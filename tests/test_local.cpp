// Tests for the LOCAL-model framework: labels, identifier policies, ball
// extraction, canonical ball encodings, simulator semantics, enforced
// obliviousness, ball profiles and the indistinguishability auditor.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "local/ball.h"
#include "local/identifiers.h"
#include "local/indistinguishability.h"
#include "local/label.h"
#include "local/labeled_graph.h"
#include "local/property.h"
#include "local/simulator.h"

namespace locald::local {
namespace {

using graph::make_cycle;
using graph::make_grid;
using graph::make_path;

TEST(Label, FieldsAndComparison) {
  const Label a{1, 2, 3};
  const Label b{1, 2, 3};
  const Label c{1, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(c, a);  // lexicographic on fields
  EXPECT_EQ(a.at(2), 3);
  EXPECT_THROW(a.at(3), Error);
  EXPECT_EQ(a.to_string(), "(1,2,3)");
  EXPECT_EQ(Label{}.to_string(), "()");
}

TEST(Label, PayloadUnambiguous) {
  EXPECT_NE(Label({12}).payload(), Label({1, 2}).payload());
  EXPECT_NE(Label({-1}).payload(), Label({1}).payload());
}

TEST(LabeledGraph, UniformAndPerNodeLabels) {
  LabeledGraph g = LabeledGraph::uniform(make_path(3), Label{7});
  EXPECT_EQ(g.label(2).at(0), 7);
  g.set_label(1, Label{9});
  EXPECT_EQ(g.label(1).at(0), 9);
  EXPECT_EQ(g.label(0).at(0), 7);
  EXPECT_THROW(g.label(5), Error);
}

TEST(LabeledGraph, SizeMismatchRejected) {
  EXPECT_THROW(LabeledGraph(make_path(3), {Label{1}}), Error);
}

TEST(LabeledGraph, LabelPreservingIsomorphism) {
  LabeledGraph a(make_path(3), {Label{1}, Label{2}, Label{1}});
  LabeledGraph b(make_path(3), {Label{1}, Label{2}, Label{1}});
  LabeledGraph c(make_path(3), {Label{2}, Label{1}, Label{1}});
  EXPECT_TRUE(isomorphic(a, b));
  EXPECT_FALSE(isomorphic(a, c));
}

TEST(Identifiers, OneToOneEnforced) {
  EXPECT_NO_THROW(IdAssignment({3, 1, 4}));
  EXPECT_THROW(IdAssignment({3, 1, 3}), Error);
}

TEST(Identifiers, ConsecutiveAndPermutation) {
  const auto c = make_consecutive(4);
  EXPECT_EQ(c.of(2), 2u);
  EXPECT_EQ(c.max_id(), 3u);
  Rng rng(1);
  const auto p = make_random_permutation(5, rng);
  std::set<Id> seen(p.raw().begin(), p.raw().end());
  EXPECT_EQ(seen, (std::set<Id>{0, 1, 2, 3, 4}));
}

TEST(Identifiers, BoundedPolicyRespectsBound) {
  Rng rng(2);
  const IdBound f = IdBound::linear_plus(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto ids = make_random_bounded(10, f, rng);
    EXPECT_TRUE(respects_bound(ids, f));
    EXPECT_LE(ids.max_id(), 10u);
  }
}

TEST(Identifiers, UnboundedCanExceedAnyLinearBound) {
  Rng rng(3);
  const auto ids = make_random_unbounded(4, 1'000'000'000, rng);
  EXPECT_EQ(ids.node_count(), 4);
  // With a billion-sized universe the chance all four ids are < 8 is nil.
  EXPECT_FALSE(respects_bound(ids, IdBound::linear_plus(4)));
}

TEST(Identifiers, InverseOfBound) {
  const IdBound f = IdBound::quadratic();  // f(n) = n^2 + 1
  // inverse(i) = smallest j with j^2 + 1 >= i
  EXPECT_EQ(f.inverse(0), 0u);
  EXPECT_EQ(f.inverse(2), 1u);
  EXPECT_EQ(f.inverse(5), 2u);
  EXPECT_EQ(f.inverse(10), 3u);
  EXPECT_EQ(f.inverse(10001), 100u);
}

TEST(Ball, ExtractionRadiusZero) {
  LabeledGraph g = LabeledGraph::uniform(make_cycle(5), Label{1});
  const Ball b = extract_ball(g, nullptr, 2, 0);
  EXPECT_EQ(b.node_count(), 1);
  EXPECT_EQ(b.center, 0);
  EXPECT_FALSE(b.has_ids());
}

TEST(Ball, ExtractionIncludesEdgesAmongNeighbors) {
  // Triangle plus pendant: ball of radius 1 around node 0 must contain the
  // edge between its two triangle neighbours.
  LabeledGraph g(graph::CsrGraph::from_edges(
      4, {{0, 1}, {0, 2}, {1, 2}, {2, 3}}));
  const Ball b = extract_ball(g, nullptr, 0, 1);
  EXPECT_EQ(b.node_count(), 3);
  EXPECT_EQ(b.g.edge_count(), 3u);  // the triangle, not the pendant edge
}

TEST(Ball, IdsCarriedAndStripped) {
  LabeledGraph g = LabeledGraph::uniform(make_path(4), Label{});
  const IdAssignment ids({10, 20, 30, 40});
  const Ball b = extract_ball(g, &ids, 1, 1);
  ASSERT_TRUE(b.has_ids());
  EXPECT_EQ(b.center_id(), 20u);
  const Ball stripped = b.without_ids();
  EXPECT_FALSE(stripped.has_ids());
  EXPECT_EQ(stripped.node_count(), b.node_count());
}

TEST(Ball, WithIdsValidates) {
  LabeledGraph g = LabeledGraph::uniform(make_path(3), Label{});
  const Ball b = extract_ball(g, nullptr, 1, 1);
  EXPECT_THROW(b.with_ids({1, 1, 2}), Error);
  EXPECT_THROW(b.with_ids({1, 2}), Error);
  const Ball c = b.with_ids({5, 6, 7});
  EXPECT_TRUE(c.has_ids());
}

TEST(Ball, CanonicalEncodingInvariantAcrossHostRelabeling) {
  // The same local structure extracted from different host positions of a
  // symmetric graph yields identical encodings.
  LabeledGraph g = LabeledGraph::uniform(make_cycle(8), Label{3});
  const std::string e0 =
      extract_ball(g, nullptr, 0, 2).canonical_encoding();
  const std::string e5 =
      extract_ball(g, nullptr, 5, 2).canonical_encoding();
  EXPECT_EQ(e0, e5);
}

TEST(Ball, CanonicalEncodingSeparatesCenter) {
  // Path a-b-c: ball around the middle differs from ball around an end even
  // though as graphs they may coincide (radius 2 sees the whole path).
  LabeledGraph g = LabeledGraph::uniform(make_path(3), Label{});
  const std::string middle =
      extract_ball(g, nullptr, 1, 2).canonical_encoding();
  const std::string end =
      extract_ball(g, nullptr, 0, 2).canonical_encoding();
  EXPECT_NE(middle, end);
}

TEST(Ball, CanonicalEncodingSeparatesLabels) {
  LabeledGraph a = LabeledGraph::uniform(make_path(3), Label{1});
  LabeledGraph b = LabeledGraph::uniform(make_path(3), Label{2});
  EXPECT_NE(extract_ball(a, nullptr, 1, 1).canonical_encoding(),
            extract_ball(b, nullptr, 1, 1).canonical_encoding());
}

TEST(Ball, CanonicalEncodingSeparatesIds) {
  LabeledGraph g = LabeledGraph::uniform(make_path(3), Label{});
  const IdAssignment i1({1, 2, 3});
  const IdAssignment i2({1, 2, 4});
  EXPECT_NE(extract_ball(g, &i1, 1, 1).canonical_encoding(),
            extract_ball(g, &i2, 1, 1).canonical_encoding());
  // ...but stripped balls agree.
  EXPECT_EQ(extract_ball(g, &i1, 1, 1).without_ids().canonical_encoding(),
            extract_ball(g, &i2, 1, 1).without_ids().canonical_encoding());
}

TEST(Simulator, AcceptsIffAllNodesYes) {
  LabeledGraph g = LabeledGraph::uniform(make_cycle(5), Label{});
  const auto all_yes = make_oblivious("yes", 0, [](const BallView&) {
    return Verdict::yes;
  });
  const auto res = run_oblivious(*all_yes, g);
  EXPECT_TRUE(res.accepted);
  EXPECT_FALSE(res.first_rejecting.has_value());

  const auto reject_somewhere = make_oblivious("no-at-deg2", 1, [](const BallView& b) {
    return b.g.degree(b.center) == 2 ? Verdict::no : Verdict::yes;
  });
  const auto res2 = run_oblivious(*reject_somewhere, g);
  EXPECT_FALSE(res2.accepted);
  ASSERT_TRUE(res2.first_rejecting.has_value());
  EXPECT_EQ(*res2.first_rejecting, 0);
}

TEST(Simulator, ObliviousAlgorithmNeverSeesIds) {
  LabeledGraph g = LabeledGraph::uniform(make_path(4), Label{});
  const IdAssignment ids({9, 8, 7, 6});
  bool saw_ids = false;
  const auto probe = make_oblivious("probe", 1, [&](const BallView& b) {
    saw_ids |= b.has_ids();
    return Verdict::yes;
  });
  run_local_algorithm(*probe, g, ids);
  EXPECT_FALSE(saw_ids);
}

TEST(Simulator, IdAwareAlgorithmSeesIds) {
  LabeledGraph g = LabeledGraph::uniform(make_path(4), Label{});
  const IdAssignment ids({9, 8, 7, 6});
  bool always_had_ids = true;
  const auto probe = make_id_aware("probe", 1, [&](const BallView& b) {
    always_had_ids &= b.has_ids();
    return Verdict::yes;
  });
  run_local_algorithm(*probe, g, ids);
  EXPECT_TRUE(always_had_ids);
  EXPECT_THROW(run_oblivious(*probe, g), Error);
}

TEST(Simulator, ProbeDetectsIdDependence) {
  LabeledGraph g = LabeledGraph::uniform(make_cycle(6), Label{});
  // Algorithm that rejects when its own id is the largest possible: clearly
  // id-dependent. With ids drawn as 6 distinct values from [0, 8), id 7 is
  // present in ~75% of assignments, so across 20 seeded trials both global
  // verdicts occur.
  const auto threshold = make_id_aware("big-id-rejects", 0, [](const BallView& b) {
    return b.center_id() >= 7 ? Verdict::no : Verdict::yes;
  });
  const auto probe =
      probe_id_dependence(*threshold, g, /*universe=*/8, 20, {{}, 5});
  EXPECT_TRUE(probe.some_node_output_changed);
  EXPECT_TRUE(probe.global_verdict_changed);

  // An id-reading but constant algorithm shows no dependence.
  const auto constant = make_id_aware("const", 0, [](const BallView&) {
    return Verdict::yes;
  });
  const auto probe2 =
      probe_id_dependence(*constant, g, /*universe=*/1'000'000, 10,
                          {{}, 6});
  EXPECT_FALSE(probe2.some_node_output_changed);
}

TEST(Property, EvaluateDeciderSplitsCompletenessAndSoundness) {
  // Property: all labels equal 1. Decider: correct local check.
  LambdaProperty prop("all-ones", [](const LabeledGraph& g) {
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      if (g.label(v).size() < 1 || g.label(v).at(0) != 1) return false;
    }
    return true;
  });
  const auto decider = make_oblivious("check-ones", 0, [](const BallView& b) {
    return (b.center_label().size() >= 1 && b.center_label().at(0) == 1)
               ? Verdict::yes
               : Verdict::no;
  });
  std::vector<LabeledGraph> instances;
  instances.push_back(LabeledGraph::uniform(make_cycle(4), Label{1}));
  instances.push_back(LabeledGraph::uniform(make_cycle(4), Label{2}));
  LabeledGraph mixed = LabeledGraph::uniform(make_path(3), Label{1});
  mixed.set_label(2, Label{0});
  instances.push_back(mixed);
  Rng rng(6);
  const auto report = evaluate_decider(*decider, prop, instances,
                                       consecutive_policy(), 1, rng);
  EXPECT_TRUE(report.all_correct());
  EXPECT_EQ(report.instances, 3);
  EXPECT_EQ(report.evaluations, 3);

  // A broken decider (always yes) fails exactly on the two no-instances.
  const auto broken = make_oblivious("always-yes", 0, [](const BallView&) {
    return Verdict::yes;
  });
  const auto report2 = evaluate_decider(*broken, prop, instances,
                                        consecutive_policy(), 1, rng);
  EXPECT_EQ(report2.failures.size(), 2u);
}

TEST(BallProfile, ContainmentOverCycleFamily) {
  // Every radius-1 ball of a long cycle occurs in a shorter cycle: the
  // classic indistinguishability example behind the Section-2 promise
  // problem.
  BallProfile profile(1);
  profile.add_graph(LabeledGraph::uniform(make_cycle(5), Label{1}));
  const LabeledGraph big = LabeledGraph::uniform(make_cycle(50), Label{1});
  const auto audit = audit_indistinguishability(big, profile);
  EXPECT_TRUE(audit.indistinguishable());
  EXPECT_EQ(audit.nodes_audited, 50u);
  EXPECT_EQ(audit.distinct_balls, 1u);
}

TEST(BallProfile, DetectsDistinguishableInstances) {
  // A path has endpoint balls that no cycle contains.
  BallProfile profile(1);
  profile.add_graph(LabeledGraph::uniform(make_cycle(5), Label{1}));
  const LabeledGraph path = LabeledGraph::uniform(make_path(5), Label{1});
  const auto audit = audit_indistinguishability(path, profile);
  EXPECT_FALSE(audit.indistinguishable());
  EXPECT_GE(audit.missing, 2u);  // both endpoints
  EXPECT_FALSE(audit.missing_witnesses.empty());
}

TEST(BallProfile, RejectsIdCarryingBalls) {
  LabeledGraph g = LabeledGraph::uniform(make_path(3), Label{});
  const IdAssignment ids({1, 2, 3});
  BallProfile profile(1);
  EXPECT_THROW(profile.add_ball(extract_ball(g, &ids, 0, 1)), Error);
}

TEST(BallProfile, RadiusMismatchRejected) {
  LabeledGraph g = LabeledGraph::uniform(make_path(3), Label{});
  BallProfile profile(2);
  EXPECT_THROW(profile.add_ball(extract_ball(g, nullptr, 0, 1)), Error);
}

// Grid vs torus: radius-1 balls of the torus interior match grid interiors,
// but the torus has no boundary balls; a grid is distinguishable from a
// torus, a torus is NOT distinguishable from grids at radius 1... unless the
// auditor is given only the torus. Both directions below.
TEST(BallProfile, TorusBallsAllInsideGridProfile) {
  BallProfile grid_profile(1);
  grid_profile.add_graph(
      LabeledGraph::uniform(make_grid(6, 6), Label{}));
  const LabeledGraph torus = LabeledGraph::uniform(graph::make_torus(6, 6),
                                                   Label{});
  EXPECT_TRUE(audit_indistinguishability(torus, grid_profile)
                  .indistinguishable());
}

TEST(BallProfile, GridBoundaryBallsMissingFromTorusProfile) {
  BallProfile torus_profile(1);
  torus_profile.add_graph(
      LabeledGraph::uniform(graph::make_torus(6, 6), Label{}));
  const LabeledGraph grid = LabeledGraph::uniform(make_grid(6, 6), Label{});
  const auto audit = audit_indistinguishability(grid, torus_profile);
  EXPECT_FALSE(audit.indistinguishable());
  EXPECT_EQ(audit.missing, 20u);  // the boundary ring of a 6x6 grid
}

class RadiusSweep : public ::testing::TestWithParam<int> {};

TEST_P(RadiusSweep, CycleBallSizes) {
  const int t = GetParam();
  LabeledGraph g = LabeledGraph::uniform(make_cycle(25), Label{});
  const Ball b = extract_ball(g, nullptr, 7, t);
  EXPECT_EQ(b.node_count(), std::min(2 * t + 1, 25));
  EXPECT_EQ(b.radius, t);
}

INSTANTIATE_TEST_SUITE_P(Radii, RadiusSweep, ::testing::Values(0, 1, 2, 3, 7, 12, 15));

}  // namespace
}  // namespace locald::local
