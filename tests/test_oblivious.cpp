// Tests for the Id-oblivious simulation A*: equivalence under (¬B, ¬C),
// failure under (B) (the Section-2 decider), and the unbounded-search
// obstruction under (C) (the Section-3 decider).
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "local/property.h"
#include "local/simulator.h"
#include "oblivious/simulation.h"
#include "props/properties.h"
#include "trees/construction.h"
#include "trees/decide.h"

namespace locald::oblivious {
namespace {

using local::BallView;
using local::LabeledGraph;
using local::Verdict;

TEST(Simulation, RejectsObliviousInner) {
  auto inner = std::shared_ptr<const local::LocalAlgorithm>(
      props::mis_decider().release());
  EXPECT_THROW(make_oblivious_simulation(inner), Error);
}

TEST(Simulation, ReproducesIdIndependentAlgorithmExactly) {
  // An id-reading decider whose output never depends on ids: A* equals it.
  auto reading = std::make_shared<local::LambdaAlgorithm>(
      "agreement-with-ids", 1, false, [](const BallView& ball) {
        (void)ball.center_id();
        const auto x = ball.center_label().at(0);
        for (graph::NodeId w : ball.g.neighbors(ball.center)) {
          if (ball.label(w).at(0) != x) return Verdict::no;
        }
        return Verdict::yes;
      });
  SimulationOptions options;
  options.id_universe = 32;
  options.max_assignments = 3'000;
  const auto sim = make_oblivious_simulation(reading, options);
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    LabeledGraph g(graph::make_random_connected(
        7, 3, 200 + static_cast<std::uint64_t>(trial)));
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      g.set_label(v, local::Label{static_cast<std::int64_t>(rng.below(2))});
    }
    const auto direct = local::run_local_algorithm(
        *reading, g, local::make_consecutive(g.node_count()));
    const auto simulated = local::run_oblivious(*sim, g);
    EXPECT_EQ(direct.outputs, simulated.outputs);
  }
}

TEST(Simulation, ExhaustiveOnTinyBallsSampledOnLarge) {
  auto reading = std::make_shared<local::LambdaAlgorithm>(
      "const-with-ids", 0, false, [](const BallView& ball) {
        (void)ball.center_id();
        return Verdict::yes;
      });
  SimulationOptions options;
  options.id_universe = 6;
  options.max_assignments = 100;
  const auto sim = make_oblivious_simulation(reading, options);
  LabeledGraph tiny = LabeledGraph::uniform(graph::make_path(1),
                                            local::Label{});
  const local::Ball b0 = local::extract_ball(tiny, nullptr, 0, 0);
  sim->evaluate(b0);
  EXPECT_TRUE(sim->last_stats().exhaustive);
  EXPECT_EQ(sim->last_stats().assignments_tried, 6u);

  SimulationOptions big = options;
  big.id_universe = 1000;
  big.max_assignments = 50;
  auto reading2 = std::make_shared<local::LambdaAlgorithm>(
      "const-with-ids", 1, false,
      [](const BallView& b) { (void)b.center_id(); return Verdict::yes; });
  const auto sim2 = make_oblivious_simulation(reading2, big);
  LabeledGraph cyc = LabeledGraph::uniform(graph::make_cycle(9),
                                           local::Label{});
  const local::Ball b1 = local::extract_ball(cyc, nullptr, 0, 1);
  sim2->evaluate(b1);
  EXPECT_FALSE(sim2->last_stats().exhaustive);
  EXPECT_EQ(sim2->last_stats().assignments_tried, 50u);
}

// The paper's key point for Section 2: applying A* to the (B)-only decider
// for P breaks it — the simulation searches id assignments the bounded-id
// promise forbids, so A* rejects yes-instances.
TEST(Simulation, BreaksSection2DeciderUnderB) {
  trees::TreeParams p;
  p.r = 2;
  p.f = local::IdBound::linear_plus(1);
  auto decider = std::shared_ptr<const local::LocalAlgorithm>(
      trees::make_P_decider(p).release());
  SimulationOptions options;
  options.id_universe = 4 * static_cast<local::Id>(p.capital_R());
  options.max_assignments = 500;
  const auto sim = make_oblivious_simulation(decider, options);
  const LabeledGraph yes =
      trees::build_patch_instance(p, trees::subtree_patch(p, 0, 0));
  // The genuine decider accepts under bounded ids...
  Rng rng(3);
  const auto ids = local::make_random_bounded(yes.node_count(), p.f, rng);
  EXPECT_TRUE(local::accepts(*trees::make_P_decider(p), yes, ids));
  // ...but its Id-oblivious simulation rejects the same yes-instance: some
  // explored assignment exceeds R(r).
  EXPECT_FALSE(local::run_oblivious(*sim, yes).accepted);
}

// Under (C): simulating an algorithm whose id-dependence is unbounded (the
// Section-3 decider simulates M for Id(v) steps) requires an unbounded
// search; with any finite universe the simulation's verdict flips as the
// universe grows past M's runtime — there is no computable "big enough".
TEST(Simulation, UniverseSizeChangesVerdictForRuntimeBoundedInner) {
  // Inner: reject iff own id >= 50 (a stand-in for "simulation reaches the
  // halting step at id >= runtime").
  auto inner = std::make_shared<local::LambdaAlgorithm>(
      "reject-at-big-id", 0, false, [](const BallView& ball) {
        return ball.center_id() >= 50 ? Verdict::no : Verdict::yes;
      });
  LabeledGraph g = LabeledGraph::uniform(graph::make_path(1),
                                         local::Label{});
  SimulationOptions small;
  small.id_universe = 50;  // never reaches the rejecting region
  small.max_assignments = 200;
  EXPECT_TRUE(local::run_oblivious(*make_oblivious_simulation(inner, small), g)
                  .accepted);
  SimulationOptions large;
  large.id_universe = 51;
  large.max_assignments = 200;
  EXPECT_FALSE(
      local::run_oblivious(*make_oblivious_simulation(inner, large), g)
          .accepted);
}

}  // namespace
}  // namespace locald::oblivious
