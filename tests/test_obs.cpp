// Unit tests for the observability layer: registry concurrency exactness,
// Prometheus exposition grammar and escaping, instrument lifetime, span
// tracing (JSON well-formedness + the same-thread containment invariant),
// the traced-vs-untraced byte-identity contract, the stopwatch, and the
// NDJSON access log.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli/sweep.h"
#include "obs/access_log.h"
#include "obs/metrics.h"
#include "obs/process.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "support/check.h"
#include "support/json.h"

namespace locald {
namespace {

// --------------------------------------------------------------------------
// Registry: concurrency exactness
// --------------------------------------------------------------------------

TEST(Metrics, CounterExactUnderConcurrency) {
  auto c = obs::registry().counter("test_obs_conc_counter_total",
                                   "concurrency test counter");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c->add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(), kThreads * kPerThread);
}

TEST(Metrics, HistogramExactUnderConcurrency) {
  auto h = obs::registry().histogram("test_obs_conc_hist_seconds",
                                     "concurrency test histogram",
                                     {0.5, 1.5, 2.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->observe(static_cast<double>(t % 4));  // values 0..3
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = h->snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 finite buckets + +Inf
  // 8 threads cycle t % 4, so exactly 2 threads land in each bucket.
  for (const std::uint64_t count : snap.counts) {
    EXPECT_EQ(count, static_cast<std::uint64_t>(2 * kPerThread));
  }
  // Sum of observations: 2*(0+1+2+3)*kPerThread.
  EXPECT_DOUBLE_EQ(snap.sum, 2.0 * 6.0 * kPerThread);
}

TEST(Metrics, GaugeAddAndSet) {
  auto g = obs::registry().gauge("test_obs_gauge", "gauge test");
  g->set(5);
  g->add(-7);
  EXPECT_EQ(g->value(), -2);
}

// --------------------------------------------------------------------------
// Registry: lifetime semantics
// --------------------------------------------------------------------------

TEST(Metrics, DroppingHandleUnregisters) {
  const std::size_t before = obs::registry().family_count();
  {
    auto c = obs::registry().counter("test_obs_transient_total", "transient");
    c->add(3);
    EXPECT_EQ(obs::registry().family_count(), before + 1);
  }
  // The only owner handle is gone; the family prunes on next collection.
  EXPECT_EQ(obs::registry().family_count(), before);
  const std::string text = obs::registry().render_prometheus();
  EXPECT_EQ(text.find("test_obs_transient_total"), std::string::npos);
}

TEST(Metrics, LastRegistrationWins) {
  auto a = obs::registry().counter("test_obs_rereg_total", "re-registration");
  a->add(41);
  auto b = obs::registry().counter("test_obs_rereg_total", "re-registration");
  b->add(1);
  // `b` replaced `a` as the exported child; the exposition shows 1, not 42.
  const std::string text = obs::registry().render_prometheus();
  EXPECT_NE(text.find("test_obs_rereg_total 1\n"), std::string::npos);
  EXPECT_EQ(text.find("test_obs_rereg_total 41"), std::string::npos);
}

TEST(Metrics, CallbackCounterPullsAtCollection) {
  std::uint64_t source = 7;
  auto handle = obs::registry().counter_fn(
      "test_obs_cb_total", "callback counter", [&] { return source; });
  std::string text = obs::registry().render_prometheus();
  EXPECT_NE(text.find("test_obs_cb_total 7\n"), std::string::npos);
  source = 123;
  text = obs::registry().render_prometheus();
  EXPECT_NE(text.find("test_obs_cb_total 123\n"), std::string::npos);
}

// --------------------------------------------------------------------------
// Prometheus exposition grammar
// --------------------------------------------------------------------------

TEST(Metrics, PrometheusGrammarAndEscaping) {
  auto c = obs::registry().counter(
      "test_obs_labeled_total", "help with \\ backslash\nand newline",
      {{"path", "a\"b\\c\nd"}});
  c->add(2);
  const std::string text = obs::registry().render_prometheus();
  EXPECT_NE(text.find("# HELP test_obs_labeled_total help with \\\\ "
                      "backslash\\nand newline\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_obs_labeled_total counter\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("test_obs_labeled_total{path=\"a\\\"b\\\\c\\nd\"} 2\n"),
      std::string::npos);
}

TEST(Metrics, PrometheusHistogramCumulativeWithInf) {
  auto h = obs::registry().histogram("test_obs_expo_hist_seconds",
                                     "exposition histogram", {1.0, 2.0});
  h->observe(0.5);
  h->observe(1.5);
  h->observe(99.0);
  const std::string text = obs::registry().render_prometheus();
  EXPECT_NE(text.find("# TYPE test_obs_expo_hist_seconds histogram\n"),
            std::string::npos);
  // Buckets are cumulative and the +Inf bucket equals the total count.
  EXPECT_NE(text.find("test_obs_expo_hist_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_expo_hist_seconds_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_expo_hist_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_expo_hist_seconds_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_obs_expo_hist_seconds_sum 101\n"),
            std::string::npos);
}

TEST(Metrics, RejectsMalformedNames) {
  EXPECT_THROW(obs::registry().counter("bad-name", "dash"), BugError);
  EXPECT_THROW(obs::registry().counter("0leading", "digit"), BugError);
  EXPECT_THROW(obs::registry().counter("", "empty"), BugError);
}

TEST(Metrics, LabelKeyIsSortedAndCanonical) {
  const std::string key =
      obs::label_key({{"z", "1"}, {"a", "2"}});
  EXPECT_EQ(key, "{a=\"2\",z=\"1\"}");
  EXPECT_EQ(obs::label_key({}), "");
}

// --------------------------------------------------------------------------
// Tracing
// --------------------------------------------------------------------------

struct TraceEvent {
  std::int64_t tid = 0;
  std::int64_t ts = 0;
  std::int64_t dur = 0;
  std::int64_t depth = 0;
  std::string name;
};

std::vector<TraceEvent> parse_trace(const std::string& doc) {
  const JsonValue root = parse_json(doc);
  EXPECT_TRUE(root.is_object());
  const JsonValue* events = root.find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  std::vector<TraceEvent> out;
  for (const JsonValue& e : events->items()) {
    EXPECT_TRUE(e.is_object());
    EXPECT_EQ(e.find("ph")->as_string(), "X");
    EXPECT_EQ(e.find("pid")->as_integer(), 1);
    TraceEvent ev;
    ev.tid = e.find("tid")->as_integer();
    ev.ts = e.find("ts")->as_integer();
    ev.dur = e.find("dur")->as_integer();
    ev.name = e.find("name")->as_string();
    ev.depth = e.find("args")->find("depth")->as_integer();
    out.push_back(ev);
  }
  return out;
}

TEST(Trace, InactiveByDefaultAndSpansAreFree) {
  ASSERT_FALSE(obs::tracing_active());
  {
    obs::Span span("never-recorded");
  }
  EXPECT_EQ(obs::tracing_event_count(), 0u);
}

TEST(Trace, NestedSpansSatisfyContainment) {
  obs::tracing_start();
  {
    obs::Span outer("outer", "detail with \"quotes\"");
    {
      obs::Span inner("inner");
    }
    {
      obs::Span sibling("sibling");
    }
  }
  std::thread worker([] {
    obs::Span span("worker-span");
  });
  worker.join();
  const std::string doc = obs::tracing_stop_json();
  EXPECT_FALSE(obs::tracing_active());

  const auto events = parse_trace(doc);
  ASSERT_EQ(events.size(), 4u);
  // The worker thread's event carries a different tid than the main three.
  std::int64_t main_tid = -1;
  for (const auto& e : events) {
    if (e.name == "outer") main_tid = e.tid;
  }
  ASSERT_NE(main_tid, -1);
  int same_tid = 0;
  for (const auto& e : events) {
    same_tid += (e.tid == main_tid);
  }
  EXPECT_EQ(same_tid, 3);

  // Containment invariant: two events on one thread are either disjoint or
  // one contains the other, and a deeper span never contains a shallower.
  for (const auto& a : events) {
    for (const auto& b : events) {
      if (&a == &b || a.tid != b.tid) continue;
      const auto a_end = a.ts + a.dur;
      const auto b_end = b.ts + b.dur;
      const bool disjoint = a_end <= b.ts || b_end <= a.ts;
      const bool a_contains_b = a.ts <= b.ts && b_end <= a_end;
      const bool b_contains_a = b.ts <= a.ts && a_end <= b_end;
      EXPECT_TRUE(disjoint || a_contains_b || b_contains_a)
          << a.name << " vs " << b.name;
      if (a_contains_b && a.name != b.name) {
        EXPECT_LE(a.depth, b.depth) << a.name << " contains " << b.name;
      }
    }
  }
  // "outer" contains both "inner" and "sibling"; the two siblings at equal
  // depth are disjoint.
  for (const auto& e : events) {
    if (e.name == "inner" || e.name == "sibling") {
      EXPECT_EQ(e.depth, 1);
    }
    if (e.name == "outer" || e.name == "worker-span") {
      EXPECT_EQ(e.depth, 0);
    }
  }
}

TEST(Trace, StopClearsAndRestartDropsStaleEvents) {
  obs::tracing_start();
  {
    obs::Span span("first-session");
  }
  EXPECT_EQ(obs::tracing_event_count(), 1u);
  (void)obs::tracing_stop_json();
  obs::tracing_start();
  EXPECT_EQ(obs::tracing_event_count(), 0u);
  const auto events = parse_trace(obs::tracing_stop_json());
  EXPECT_TRUE(events.empty());
}

TEST(Trace, StopToFileWritesTheDocument) {
  obs::tracing_start();
  {
    obs::Span span("to-file");
  }
  const std::string path = "test_obs_trace_out.json";
  std::string error;
  ASSERT_TRUE(obs::tracing_stop_to_file(path, &error)) << error;
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto events = parse_trace(buf.str());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "to-file");
  std::remove(path.c_str());
}

// The determinism contract: the deterministic sweep document must be
// byte-identical whether or not a trace session is collecting.
TEST(Trace, SweepBytesIdenticalWithTracingOn) {
  cli::SweepOptions sweep;
  sweep.seed = 7;
  sweep.sizes = {6, 8};
  sweep.trials = 2;
  std::ostringstream untraced;
  const int rc1 = cli::run_sweep("promise-cycle", sweep, untraced);

  obs::tracing_start();
  std::ostringstream traced;
  const int rc2 = cli::run_sweep("promise-cycle", sweep, traced);
  const auto events = parse_trace(obs::tracing_stop_json());

  EXPECT_EQ(rc1, rc2);
  EXPECT_EQ(untraced.str(), traced.str());
  // The traced run actually recorded its cells.
  int cells = 0;
  for (const auto& e : events) {
    cells += (e.name == "sweep-cell");
  }
  EXPECT_EQ(cells, 2);
}

// --------------------------------------------------------------------------
// Stopwatch and process facts
// --------------------------------------------------------------------------

TEST(Stopwatch, MonotoneAndResets) {
  obs::Stopwatch sw;
  const double a = sw.elapsed_seconds();
  EXPECT_GE(a, 0.0);
  const double b = sw.elapsed_seconds();
  EXPECT_GE(b, a);
  EXPECT_GE(sw.elapsed_ms(), b * 1000.0);
  sw.reset();
  EXPECT_LE(sw.elapsed_seconds(), b + 1.0);
}

TEST(Process, PeakRssAndUptimeArePositive) {
  EXPECT_GT(obs::peak_rss_kb(), 0u);
  const double up = obs::uptime_seconds();
  EXPECT_GE(up, 0.0);
  EXPECT_GE(obs::uptime_seconds(), up);
}

// --------------------------------------------------------------------------
// Access log
// --------------------------------------------------------------------------

TEST(AccessLog, WritesParseableNdjsonLines) {
  const std::string path = "test_obs_access.log";
  std::remove(path.c_str());
  {
    obs::AccessLog log(path);
    obs::AccessEntry entry;
    entry.method = "POST";
    entry.path = "/v1/run";
    entry.status = 200;
    entry.response_bytes = 512;
    entry.duration_ms = 12.345;
    entry.worker = 3;
    entry.cache_hits = 9;
    log.write(entry);
    entry.method = "GET";
    entry.path = "/metrics\"quoted\"";
    entry.status = 404;
    log.write(entry);
    EXPECT_EQ(log.lines_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::vector<JsonValue> lines;
  while (std::getline(in, line)) {
    lines.push_back(parse_json(line));
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].find("method")->as_string(), "POST");
  EXPECT_EQ(lines[0].find("path")->as_string(), "/v1/run");
  EXPECT_EQ(lines[0].find("status")->as_integer(), 200);
  EXPECT_EQ(lines[0].find("bytes")->as_integer(), 512);
  EXPECT_NEAR(lines[0].find("duration_ms")->as_double(), 12.345, 1e-3);
  EXPECT_EQ(lines[0].find("worker")->as_integer(), 3);
  EXPECT_EQ(lines[0].find("cache_hits")->as_integer(), 9);
  EXPECT_GT(lines[0].find("ts_ms")->as_integer(), 0);
  // Quotes in the path survive the JSON round trip.
  EXPECT_EQ(lines[1].find("path")->as_string(), "/metrics\"quoted\"");
  EXPECT_EQ(lines[1].find("status")->as_integer(), 404);
  std::remove(path.c_str());
}

TEST(AccessLog, AppendsAcrossInstances) {
  const std::string path = "test_obs_access_append.log";
  std::remove(path.c_str());
  obs::AccessEntry entry;
  entry.method = "GET";
  entry.path = "/healthz";
  entry.status = 200;
  {
    obs::AccessLog log(path);
    log.write(entry);
  }
  {
    obs::AccessLog log(path);
    log.write(entry);
  }
  std::ifstream in(path);
  std::string line;
  int count = 0;
  while (std::getline(in, line)) ++count;
  EXPECT_EQ(count, 2);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace locald
