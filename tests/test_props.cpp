// Tests for the example properties: oracle correctness and oracle/decider
// agreement over deterministic and randomized instance families.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "local/property.h"
#include "local/simulator.h"
#include "props/properties.h"

namespace locald::props {
namespace {

using local::IdAssignment;
using local::LabeledGraph;
using local::Label;
using local::make_consecutive;

LabeledGraph colored_cycle(graph::NodeId n, const std::vector<int>& colors) {
  LabeledGraph g = LabeledGraph::uniform(graph::make_cycle(n), Label{});
  for (graph::NodeId v = 0; v < n; ++v) {
    g.set_label(v, Label{colors[static_cast<std::size_t>(v) % colors.size()]});
  }
  return g;
}

TEST(Coloring, OracleAcceptsProperRejectsImproper) {
  const auto prop = proper_coloring_property(3);
  EXPECT_TRUE(prop->contains(colored_cycle(6, {0, 1})));
  EXPECT_FALSE(prop->contains(colored_cycle(6, {0, 0})));
  // Colour out of range.
  EXPECT_FALSE(prop->contains(colored_cycle(6, {0, 5})));
  // Odd cycle cannot be 2-coloured with alternating pattern of period 2.
  EXPECT_FALSE(proper_coloring_property(2)->contains(colored_cycle(5, {0, 1})));
}

TEST(Coloring, DeciderAgreesWithOracle) {
  const auto prop = proper_coloring_property(3);
  const auto dec = proper_coloring_decider(3);
  locald::Rng rng(21);
  std::vector<LabeledGraph> instances;
  instances.push_back(colored_cycle(6, {0, 1, 2}));
  instances.push_back(colored_cycle(6, {0, 1}));
  instances.push_back(colored_cycle(5, {0, 1}));
  instances.push_back(colored_cycle(7, {0, 0, 1}));
  for (int trial = 0; trial < 10; ++trial) {
    LabeledGraph g(graph::make_random_connected(
        12, 6, 2100 + static_cast<std::uint64_t>(trial)));
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      g.set_label(v, Label{static_cast<std::int64_t>(rng.below(4))});
    }
    instances.push_back(std::move(g));
  }
  const auto report = local::evaluate_decider(
      *dec, *prop, instances, local::consecutive_policy(), 1, rng);
  EXPECT_TRUE(report.all_correct()) << report.failures.size() << " failures";
}

TEST(Mis, OracleChecksIndependenceAndMaximality) {
  const auto prop = mis_property();
  // Path 0-1-2-3: {0,2} is maximal independent... node 3 has neighbour 2 in
  // the set, nodes 1 has 0 and 2. Valid.
  LabeledGraph ok(graph::make_path(4),
                  {Label{1}, Label{0}, Label{1}, Label{0}});
  EXPECT_TRUE(prop->contains(ok));
  // {0,1} adjacent: not independent.
  LabeledGraph dep(graph::make_path(4),
                   {Label{1}, Label{1}, Label{0}, Label{1}});
  EXPECT_FALSE(prop->contains(dep));
  // {0}: node 2 and 3 uncovered -> not maximal.
  LabeledGraph notmax(graph::make_path(4),
                      {Label{1}, Label{0}, Label{0}, Label{0}});
  EXPECT_FALSE(prop->contains(notmax));
  // Labels outside {0,1} rejected.
  LabeledGraph bad(graph::make_path(2), {Label{2}, Label{1}});
  EXPECT_FALSE(prop->contains(bad));
}

TEST(Mis, DeciderAgreesWithOracleOnRandomBitLabellings) {
  const auto prop = mis_property();
  const auto dec = mis_decider();
  locald::Rng rng(22);
  std::vector<LabeledGraph> instances;
  for (int trial = 0; trial < 30; ++trial) {
    LabeledGraph g(graph::make_random_connected(
        10, 5, 2200 + static_cast<std::uint64_t>(trial)));
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      g.set_label(v, Label{static_cast<std::int64_t>(rng.below(2))});
    }
    instances.push_back(std::move(g));
  }
  const auto report = local::evaluate_decider(
      *dec, *prop, instances, local::consecutive_policy(), 1, rng);
  EXPECT_TRUE(report.all_correct());
}

TEST(Agreement, DetectsDisagreementAcrossSomeEdge) {
  const auto prop = agreement_property();
  const auto dec = agreement_decider();
  LabeledGraph agree = LabeledGraph::uniform(graph::make_cycle(5), Label{4});
  EXPECT_TRUE(prop->contains(agree));
  EXPECT_TRUE(local::run_oblivious(*dec, agree).accepted);
  LabeledGraph disagree = agree;
  disagree.set_label(3, Label{5});
  EXPECT_FALSE(prop->contains(disagree));
  EXPECT_FALSE(local::run_oblivious(*dec, disagree).accepted);
}

TEST(BoundedDegree, OracleAndDecider) {
  const auto prop = bounded_degree_property(2);
  const auto dec = bounded_degree_decider(2);
  LabeledGraph cyc = LabeledGraph::uniform(graph::make_cycle(6), Label{});
  LabeledGraph star = LabeledGraph::uniform(graph::make_star(4), Label{});
  EXPECT_TRUE(prop->contains(cyc));
  EXPECT_FALSE(prop->contains(star));
  EXPECT_TRUE(local::run_oblivious(*dec, cyc).accepted);
  EXPECT_FALSE(local::run_oblivious(*dec, star).accepted);
}

TEST(CycleProperty, SeparatesCyclesFromPaths) {
  const auto prop = cycle_property();
  const auto dec = cycle_decider();
  LabeledGraph cyc = LabeledGraph::uniform(graph::make_cycle(9), Label{});
  LabeledGraph path = LabeledGraph::uniform(graph::make_path(9), Label{});
  EXPECT_TRUE(prop->contains(cyc));
  EXPECT_FALSE(prop->contains(path));
  EXPECT_TRUE(local::run_oblivious(*dec, cyc).accepted);
  EXPECT_FALSE(local::run_oblivious(*dec, path).accepted);
}

// All example deciders are honest members of LD*: their outputs cannot
// depend on identifiers because the framework strips them. This sweep
// confirms no per-node output changes across random id assignments.
class ObliviousSweep
    : public ::testing::TestWithParam<int> {};

TEST_P(ObliviousSweep, NoIdDependence) {
  const std::uint64_t seed = 23 + static_cast<std::uint64_t>(GetParam());
  locald::Rng rng(seed);
  LabeledGraph g(graph::make_random_connected(12, 8, seed));
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    g.set_label(v, Label{static_cast<std::int64_t>(rng.below(3))});
  }
  std::vector<std::unique_ptr<local::LocalAlgorithm>> algs;
  algs.push_back(proper_coloring_decider(3));
  algs.push_back(mis_decider());
  algs.push_back(agreement_decider());
  algs.push_back(bounded_degree_decider(3));
  algs.push_back(cycle_decider());
  for (const auto& alg : algs) {
    const auto probe =
        local::probe_id_dependence(*alg, g, 1'000'000, 6, {{}, seed});
    EXPECT_FALSE(probe.some_node_output_changed) << alg->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObliviousSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace locald::props
