// Tests for the `locald serve` subsystem: HTTP request parsing edge cases,
// the API documents and their request decoding, routing, and live-socket
// integration — concurrent byte-identity, shared-cache warm-up, and the
// 503 backpressure path.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "server/api.h"
#include "server/http.h"
#include "server/server.h"
#include "support/check.h"
#include "support/json.h"
#include "support/schema.h"

namespace locald::server {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// A ByteSource backed by a string, delivering at most `chunk` bytes per
// pull — small chunks exercise the incremental head/body accumulation.
ByteSource source_from(std::string data, std::size_t chunk = 7) {
  auto cursor = std::make_shared<std::size_t>(0);
  auto owned = std::make_shared<std::string>(std::move(data));
  return [cursor, owned, chunk](char* buf, std::size_t len) -> long {
    const std::size_t left = owned->size() - *cursor;
    const std::size_t n = std::min({len, left, chunk});
    std::memcpy(buf, owned->data() + *cursor, n);
    *cursor += n;
    return static_cast<long>(n);
  };
}

ParseResult parse(const std::string& raw) {
  return read_http_request(source_from(raw), HttpLimits{});
}

// A blocking one-shot HTTP client against 127.0.0.1:port.
int connect_to(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  LOCALD_CHECK(fd >= 0, "client socket()");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  LOCALD_CHECK(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr)) == 0,
               "client connect()");
  return fd;
}

void send_raw(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    LOCALD_CHECK(n > 0, "client send()");
    sent += static_cast<std::size_t>(n);
  }
}

std::string read_to_eof(int fd) {
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

struct ClientResponse {
  int status = 0;
  std::string head;  // status line + headers
  std::string body;
};

ClientResponse split_response(const std::string& raw) {
  ClientResponse r;
  const std::size_t cut = raw.find("\r\n\r\n");
  LOCALD_CHECK(cut != std::string::npos, "response has no head terminator");
  r.head = raw.substr(0, cut);
  r.body = raw.substr(cut + 4);
  LOCALD_CHECK(raw.rfind("HTTP/1.1 ", 0) == 0, "bad status line");
  r.status = std::stoi(raw.substr(9, 3));
  return r;
}

ClientResponse request(int port, const std::string& bytes) {
  const int fd = connect_to(port);
  send_raw(fd, bytes);
  const std::string raw = read_to_eof(fd);
  ::close(fd);
  return split_response(raw);
}

// One-shot request builders: `Connection: close` keeps the read-to-EOF
// client model working now that the server defaults to keep-alive (the
// keep-alive conversation itself is covered by test_http_conformance).
std::string get(const std::string& path) {
  return "GET " + path + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
}

std::string post(const std::string& path, const std::string& body) {
  return "POST " + path + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n" +
         "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
}

// Decoded chunked-transfer response: the data frames in arrival order and
// their concatenation.
struct StreamedResponse {
  int status = 0;
  std::string head;
  std::vector<std::string> chunks;
  std::string body;
};

StreamedResponse decode_chunked(const std::string& raw) {
  StreamedResponse r;
  const std::size_t cut = raw.find("\r\n\r\n");
  LOCALD_CHECK(cut != std::string::npos, "response has no head terminator");
  r.head = raw.substr(0, cut);
  LOCALD_CHECK(raw.rfind("HTTP/1.1 ", 0) == 0, "bad status line");
  r.status = std::stoi(raw.substr(9, 3));
  LOCALD_CHECK(r.head.find("Transfer-Encoding: chunked") != std::string::npos,
               "response is not chunked");
  std::size_t pos = cut + 4;
  while (true) {
    const std::size_t eol = raw.find("\r\n", pos);
    LOCALD_CHECK(eol != std::string::npos, "truncated chunk-size line");
    const std::size_t len =
        std::stoull(raw.substr(pos, eol - pos), nullptr, 16);
    pos = eol + 2;
    if (len == 0) break;
    LOCALD_CHECK(pos + len + 2 <= raw.size(), "truncated chunk data");
    LOCALD_CHECK(raw.compare(pos + len, 2, "\r\n") == 0,
                 "chunk data not CRLF-terminated");
    r.chunks.push_back(raw.substr(pos, len));
    r.body += r.chunks.back();
    pos += len + 2;
  }
  return r;
}

// ---------------------------------------------------------------------------
// HTTP parsing
// ---------------------------------------------------------------------------

TEST(Http, ParsesGetRequest) {
  const ParseResult r =
      parse("GET /v1/healthz?probe=1 HTTP/1.1\r\nHost: x\r\nX-Ab: 2\r\n\r\n");
  ASSERT_EQ(r.status, 200) << r.error;
  EXPECT_EQ(r.request.method, "GET");
  EXPECT_EQ(r.request.target, "/v1/healthz?probe=1");
  EXPECT_EQ(r.request.path(), "/v1/healthz");  // query stripped for routing
  EXPECT_EQ(r.request.version, "HTTP/1.1");
  EXPECT_TRUE(r.request.body.empty());
}

TEST(Http, HeaderNamesAreCaseInsensitive) {
  const ParseResult r =
      parse("GET / HTTP/1.1\r\nX-MiXeD-CaSe:  padded value \r\n\r\n");
  ASSERT_EQ(r.status, 200);
  ASSERT_NE(r.request.header("x-mixed-case"), nullptr);
  EXPECT_EQ(*r.request.header("x-mixed-case"), "padded value");
  EXPECT_EQ(r.request.header("absent"), nullptr);
}

TEST(Http, ParsesPostBodyByContentLength) {
  const ParseResult r = parse(post("/v1/run", "{\"scenario\":\"x\"}"));
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(r.request.method, "POST");
  EXPECT_EQ(r.request.body, "{\"scenario\":\"x\"}");
}

TEST(Http, RejectsMalformedFraming) {
  EXPECT_EQ(parse("").status, 400);                        // empty
  EXPECT_EQ(parse("GET /\r\n\r\n").status, 400);           // no version
  EXPECT_EQ(parse("GET / HTTP/2 extra\r\n\r\n").status, 400);
  EXPECT_EQ(parse("GET / HTTP/9.9\r\n\r\n").status, 400);  // bad version
  EXPECT_EQ(parse("G@T / HTTP/1.1\r\n\r\n").status, 400);  // bad method
  EXPECT_EQ(parse("GET nopath HTTP/1.1\r\n\r\n").status, 400);
  EXPECT_EQ(parse("GET / HTTP/1.1\r\nno-colon-line\r\n\r\n").status, 400);
  EXPECT_EQ(parse("GET / HTTP/1.1\r\nbad name: v\r\n\r\n").status, 400);
  EXPECT_EQ(parse("GET / HTTP/1.1\r\n").status, 400);      // EOF mid-head
}

TEST(Http, RejectsBadContentLength) {
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n").status,
            400);
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n").status,
            400);
  // Declared 10, delivered 4, then EOF.
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabcd").status,
            400);
  // Bytes beyond the declared length on a one-request connection.
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: 2\r\n\r\nabcd").status,
            400);
}

TEST(Http, RejectsOversizedBodyBeforeReadingIt) {
  HttpLimits limits;
  limits.max_body_bytes = 16;
  const ParseResult r = read_http_request(
      source_from("POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n"), limits);
  EXPECT_EQ(r.status, 413);
}

TEST(Http, RejectsOversizedHead) {
  HttpLimits limits;
  limits.max_head_bytes = 64;
  const std::string big(200, 'a');
  const ParseResult r = read_http_request(
      source_from("GET / HTTP/1.1\r\nX-Big: " + big + "\r\n\r\n"), limits);
  EXPECT_EQ(r.status, 431);
}

TEST(Http, ParsesChunkedBodiesAndRejectsOtherCodings) {
  const ParseResult r = parse(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n");
  ASSERT_EQ(r.status, 200) << r.error;
  EXPECT_EQ(r.request.body, "hello world");
  // Only chunked is implemented; other codings are answered 501, and a
  // message carrying both length declarations is a smuggling vector.
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n").status,
            501);
  EXPECT_EQ(parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n"
                  "Content-Length: 3\r\n\r\n0\r\n\r\n")
                .status,
            400);
}

TEST(Http, ReportsTimeoutAs408) {
  const ByteSource stalled = [](char*, std::size_t) -> long { return -1; };
  EXPECT_EQ(read_http_request(stalled, HttpLimits{}).status, 408);
}

TEST(Http, SerializesResponseWithFramingHeaders) {
  HttpResponse resp;
  resp.status = 503;
  resp.body = "{}";
  resp.extra_headers.emplace_back("Retry-After", "1");
  const std::string raw = serialize_http_response(resp);
  EXPECT_NE(raw.find("HTTP/1.1 503 Service Unavailable\r\n"),
            std::string::npos);
  EXPECT_NE(raw.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(raw.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(raw.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(raw.find("Connection: close\r\n\r\n{}"), std::string::npos);
}

// ---------------------------------------------------------------------------
// API documents and request decoding
// ---------------------------------------------------------------------------

TEST(Api, ParsesRunRequestWithDefaults) {
  const RunRequest r = parse_run_request(R"({"scenario": "promise-cycle"})");
  EXPECT_EQ(r.scenario, "promise-cycle");
  EXPECT_EQ(r.seed, 42u);
  EXPECT_EQ(r.size, 0);
  EXPECT_EQ(r.trials, 0);
  const RunRequest full = parse_run_request(
      R"({"scenario": "x", "seed": 7, "size": 3, "trials": 9})");
  EXPECT_EQ(full.seed, 7u);
  EXPECT_EQ(full.size, 3);
  EXPECT_EQ(full.trials, 9);
}

TEST(Api, RejectsBadRunRequests) {
  for (const char* bad : {
           "",                                   // empty body
           "not json",                           // malformed JSON
           "[1, 2]",                             // not an object
           "{}",                                 // scenario missing
           R"({"scenario": 3})",                 // wrong type
           R"({"scenario": ""})",                // empty name
           R"({"scenario": "x", "seed": -1})",   // negative
           R"({"scenario": "x", "seed": 1.5})",  // non-integer
           R"({"scenario": "x", "trails": 2})",  // typoed field
       }) {
    EXPECT_THROW(parse_run_request(bad), Error) << "accepted: " << bad;
  }
}

TEST(Api, ParsesSweepRequestSizes) {
  const SweepRequest r = parse_sweep_request(
      R"({"scenario": "promise-cycle", "sizes": [6, 8], "trials": 2})");
  EXPECT_EQ(r.sizes, (std::vector<int>{6, 8}));
  EXPECT_EQ(r.trials, 2);
  EXPECT_THROW(parse_sweep_request(R"({"scenario": "x", "sizes": []})"),
               Error);
  EXPECT_THROW(parse_sweep_request(R"({"scenario": "x", "sizes": [-1]})"),
               Error);
  EXPECT_THROW(parse_sweep_request(R"({"scenario": "x", "size": 4})"),
               Error);  // run's field, not sweep's
}

TEST(Api, ScenariosDocumentMirrorsRegistry) {
  const std::string doc = scenarios_document();
  const JsonValue v = parse_json(doc);  // valid JSON by construction
  ASSERT_NE(v.find("scenarios"), nullptr);
  const auto& items = v.find("scenarios")->items();
  ASSERT_EQ(items.size(), cli::scenario_registry().size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(items[i].find("name")->as_string(),
              cli::scenario_registry()[i].name);
  }
}

TEST(Api, VersionDocumentCarriesSchemaAndGraphCore) {
  const JsonValue v = parse_json(version_document());
  EXPECT_EQ(v.find("tool")->as_string(), "locald-version");
  EXPECT_EQ(v.find("schema_version")->as_integer(), kSchemaVersion);
  EXPECT_EQ(v.find("graph_core")->as_string(), kGraphCoreId);
  ASSERT_NE(v.find("build"), nullptr);
  EXPECT_NE(v.find("build")->find("standard"), nullptr);
}

TEST(Api, EveryDocumentCarriesTheSchemaVersion) {
  RunRequest req;
  req.scenario = "promise-cycle";
  exec::ExecContext serial;
  for (const std::string& doc :
       {scenarios_document(), families_document(), version_document(),
        run_document(req, serial, nullptr), error_document(418, "teapot")}) {
    const JsonValue v = parse_json(doc);
    ASSERT_NE(v.find("schema_version"), nullptr) << doc;
    EXPECT_EQ(v.find("schema_version")->as_integer(), kSchemaVersion);
  }
}

TEST(Api, RunDocumentIsDeterministicAndParseable) {
  RunRequest req;
  req.scenario = "promise-cycle";
  req.seed = 7;
  exec::ExecContext serial;
  bool ok1 = false;
  bool ok2 = false;
  const std::string a = run_document(req, serial, &ok1);
  const std::string b = run_document(req, serial, &ok2);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(ok1);
  EXPECT_TRUE(ok2);
  const JsonValue v = parse_json(a);
  EXPECT_EQ(v.find("scenario")->as_string(), "promise-cycle");
  EXPECT_EQ(v.find("seed")->as_integer(), 7);
  EXPECT_TRUE(v.find("ok")->as_bool());
  EXPECT_FALSE(v.find("output")->as_string().empty());
}

TEST(Api, RunDocumentRejectsUnknownScenario) {
  RunRequest req;
  req.scenario = "no-such-scenario";
  exec::ExecContext serial;
  EXPECT_THROW(run_document(req, serial, nullptr), Error);
}

// ---------------------------------------------------------------------------
// Routing (no sockets; Server::handle is the workers' exact path)
// ---------------------------------------------------------------------------

HttpRequest make_request(std::string method, std::string target,
                         std::string body = "") {
  HttpRequest r;
  r.method = std::move(method);
  r.target = std::move(target);
  r.version = "HTTP/1.1";
  r.body = std::move(body);
  return r;
}

TEST(Routing, HealthzAndMetricsAndScenarios) {
  Server server{ServeOptions{}};
  EXPECT_EQ(server.handle(make_request("GET", "/v1/healthz")).status, 200);
  EXPECT_EQ(server.handle(make_request("GET", "/v1/metrics")).status, 200);
  const HttpResponse version =
      server.handle(make_request("GET", "/v1/version"));
  EXPECT_EQ(version.status, 200);
  EXPECT_EQ(version.body, version_document());
  const HttpResponse scenarios =
      server.handle(make_request("GET", "/v1/scenarios"));
  EXPECT_EQ(scenarios.status, 200);
  EXPECT_EQ(scenarios.body, scenarios_document());
}

TEST(Routing, FaultsCatalogMatchesDocumentBuilder) {
  Server server{ServeOptions{}};
  const HttpResponse faults = server.handle(make_request("GET", "/v1/faults"));
  EXPECT_EQ(faults.status, 200);
  EXPECT_EQ(faults.body, faults_document());
  // Every registered profile appears by name in the catalog.
  EXPECT_NE(faults.body.find("\"none\""), std::string::npos);
  EXPECT_NE(faults.body.find("\"drop\""), std::string::npos);
  EXPECT_NE(faults.body.find("\"chaos\""), std::string::npos);
  EXPECT_EQ(server.handle(make_request("POST", "/v1/faults")).status, 405);
}

TEST(Routing, MethodAndPathErrors) {
  Server server{ServeOptions{}};
  const HttpResponse wrong_method =
      server.handle(make_request("POST", "/v1/healthz"));
  EXPECT_EQ(wrong_method.status, 405);
  ASSERT_FALSE(wrong_method.extra_headers.empty());
  EXPECT_EQ(wrong_method.extra_headers.front().second, "GET");
  EXPECT_EQ(server.handle(make_request("GET", "/v1/run")).status, 405);
  EXPECT_EQ(server.handle(make_request("GET", "/nope")).status, 404);
}

TEST(Routing, RunRequestErrorsMapToStatuses) {
  Server server{ServeOptions{}};
  EXPECT_EQ(server.handle(make_request("POST", "/v1/run", "{bad")).status,
            400);
  EXPECT_EQ(server
                .handle(make_request("POST", "/v1/run",
                                     R"({"scenario": "missing"})"))
                .status,
            404);
  EXPECT_EQ(server
                .handle(make_request("POST", "/v1/sweep",
                                     R"({"scenario": "missing"})"))
                .status,
            404);
}

TEST(Routing, ServeOptionsAreValidated) {
  ServeOptions bad_workers;
  bad_workers.workers = 0;
  EXPECT_THROW(Server{bad_workers}, Error);
  ServeOptions bad_queue;
  bad_queue.max_queue = 0;
  EXPECT_THROW(Server{bad_queue}, Error);
  ServeOptions bad_port;
  bad_port.port = 70000;
  EXPECT_THROW(Server{bad_port}, Error);
}

// ---------------------------------------------------------------------------
// Live-socket integration
// ---------------------------------------------------------------------------

ServeOptions test_options() {
  ServeOptions o;
  o.port = 0;  // ephemeral
  return o;
}

TEST(ServerSocket, ServesHealthzAndErrorsOverRealSockets) {
  Server server{test_options()};
  server.start();
  EXPECT_GT(server.port(), 0);
  const ClientResponse health = request(server.port(), get("/v1/healthz"));
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(parse_json(health.body).find("status")->as_string(), "ok");

  EXPECT_EQ(request(server.port(), get("/v1/nope")).status, 404);
  EXPECT_EQ(request(server.port(), post("/v1/run", "{bad")).status, 400);
  EXPECT_EQ(request(server.port(),
                    post("/v1/run", R"({"scenario": "missing"})"))
                .status,
            404);

  // Oversized upload: rejected from the Content-Length header alone.
  ServeOptions small = test_options();
  small.limits.max_body_bytes = 32;
  Server tiny{small};
  tiny.start();
  const int fd = connect_to(tiny.port());
  send_raw(fd, "POST /v1/run HTTP/1.1\r\nContent-Length: 4096\r\n\r\n");
  const ClientResponse too_big = split_response(read_to_eof(fd));
  ::close(fd);
  EXPECT_EQ(too_big.status, 413);
  tiny.stop();
  server.stop();
}

TEST(ServerSocket, ScenariosEndpointMatchesCliDocument) {
  Server server{test_options()};
  server.start();
  const ClientResponse r = request(server.port(), get("/v1/scenarios"));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, scenarios_document());
  server.stop();
}

TEST(ServerSocket, ConcurrentIdenticalRequestsAreByteIdentical) {
  ServeOptions options = test_options();
  options.threads = 2;  // shared pool in play
  options.workers = 4;  // genuine request concurrency
  Server server{options};
  server.start();

  // The serial, cache-less reference — what the one-shot CLI would print.
  RunRequest req;
  req.scenario = "promise-halting";
  exec::ExecContext serial;
  const std::string reference = run_document(req, serial, nullptr);

  const std::string wire =
      post("/v1/run", R"({"scenario": "promise-halting"})");
  constexpr int kClients = 4;
  constexpr int kRequestsEach = 3;
  std::vector<std::string> bodies(kClients * kRequestsEach);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsEach; ++i) {
        const ClientResponse r = request(server.port(), wire);
        if (r.status != 200) failures.fetch_add(1);
        bodies[static_cast<std::size_t>(c * kRequestsEach + i)] = r.body;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (const std::string& body : bodies) {
    // Identical across concurrency AND identical to the serial CLI bytes:
    // the shared pool + shared cache are invisible in the response.
    EXPECT_EQ(body, reference);
  }
  server.stop();
}

TEST(ServerSocket, SecondIdenticalRequestHitsTheSharedCache) {
  Server server{test_options()};
  server.start();
  const std::string wire =
      post("/v1/run", R"({"scenario": "promise-halting"})");
  ASSERT_EQ(request(server.port(), wire).status, 200);  // warm-up
  ASSERT_EQ(request(server.port(), wire).status, 200);

  const ClientResponse metrics =
      request(server.port(), get("/v1/metrics"));
  ASSERT_EQ(metrics.status, 200);
  const JsonValue m = parse_json(metrics.body);
  const JsonValue* cache = m.find("cache");
  ASSERT_NE(cache, nullptr);
  // The warmed cache must answer the second run's balls from memory; the
  // acceptance bar for the serving layer's raison d'être.
  EXPECT_GT(cache->find("hits")->as_integer(), 0);
  EXPECT_GT(cache->find("entries")->as_integer(), 0);
  EXPECT_EQ(m.find("requests_total")->as_integer(), 3);
  // The canonicalization-engine counters ride along (process-wide
  // monotonic: the cache-keyed runs above canonicalized balls).
  const JsonValue* canon = m.find("canon");
  ASSERT_NE(canon, nullptr);
  EXPECT_GT(canon->find("forms")->as_integer(), 0);
  server.stop();
}

TEST(ServerSocket, ShedsLoadWith503WhenTheQueueIsFull) {
  ServeOptions options = test_options();
  options.workers = 1;
  options.max_queue = 1;
  options.read_timeout_ms = 60000;  // the stalled socket must not 408 early
  Server server{options};
  server.start();

  // Occupy the only worker: a request that never finishes arriving.
  const int stalled = connect_to(server.port());
  send_raw(stalled, "POST /v1/run HTTP/1.1\r\n");
  auto gauge_is = [&](std::uint64_t in_flight, std::uint64_t queued) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      const MetricsSnapshot m = server.metrics();
      if (m.in_flight == in_flight && m.queue_depth == queued) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  };
  ASSERT_TRUE(gauge_is(1, 0));  // worker busy on the stalled connection

  // Fill the queue's single slot with another idle connection.
  const int queued = connect_to(server.port());
  ASSERT_TRUE(gauge_is(1, 1));

  // The next connection must be shed at the door.
  const ClientResponse shed = request(server.port(), get("/v1/healthz"));
  EXPECT_EQ(shed.status, 503);
  EXPECT_NE(shed.head.find("Retry-After: 1"), std::string::npos);
  EXPECT_GE(server.metrics().rejected_total, 1u);

  // Release the worker; the queued connection now gets served.
  ::close(stalled);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool drained = false;
  while (std::chrono::steady_clock::now() < deadline && !drained) {
    drained = server.metrics().queue_depth == 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(drained);
  send_raw(queued, get("/v1/healthz"));
  EXPECT_EQ(split_response(read_to_eof(queued)).status, 200);
  ::close(queued);
  server.stop();
}

// ---------------------------------------------------------------------------
// Streamed sweeps
// ---------------------------------------------------------------------------

TEST(ServerSocket, StreamedSweepChunksReassembleToTheBufferedDocument) {
  const std::string body =
      R"({"scenario": "promise-cycle", "sizes": [6, 8], "trials": 2, "seed": 7})";
  // The determinism contract's fixed point: the in-process document built
  // with no pool and no cache. Every transport below must reproduce it.
  const std::string reference =
      sweep_document(parse_sweep_request(body), nullptr, nullptr);
  ASSERT_FALSE(reference.empty());

  for (const int threads : {1, 2}) {
    ServeOptions options = test_options();
    options.threads = threads;
    Server server{options};
    server.start();

    // HTTP/1.1: chunked transfer, one chunk per flush boundary (prelude,
    // each finished cell, postlude) — at least 4 frames for a 2-cell grid.
    const int fd = connect_to(server.port());
    send_raw(fd, post("/v1/sweep", body));
    const StreamedResponse streamed = decode_chunked(read_to_eof(fd));
    ::close(fd);
    EXPECT_EQ(streamed.status, 200) << "threads=" << threads;
    EXPECT_GE(streamed.chunks.size(), 4u) << "threads=" << threads;
    EXPECT_EQ(streamed.body, reference) << "threads=" << threads;

    // HTTP/1.0 clients cannot parse chunked framing; they get the same
    // bytes buffered behind a Content-Length.
    const int fd10 = connect_to(server.port());
    send_raw(fd10, "POST /v1/sweep HTTP/1.0\r\nContent-Length: " +
                       std::to_string(body.size()) + "\r\n\r\n" + body);
    const ClientResponse buffered = split_response(read_to_eof(fd10));
    ::close(fd10);
    EXPECT_EQ(buffered.status, 200) << "threads=" << threads;
    EXPECT_NE(buffered.head.find("Content-Length: "), std::string::npos);
    EXPECT_EQ(buffered.body, reference) << "threads=" << threads;
    server.stop();
  }
}

TEST(ServerSocket, StreamedSweepValidationFailuresAnswerBuffered) {
  Server server{test_options()};
  server.start();
  // Pre-head validation failures must arrive as ordinary Content-Length
  // error documents, never as a committed 200 chunk stream.
  const ClientResponse unknown = request(
      server.port(), post("/v1/sweep", R"({"scenario": "no-such"})"));
  EXPECT_EQ(unknown.status, 404);
  EXPECT_EQ(unknown.head.find("Transfer-Encoding"), std::string::npos);
  const ClientResponse malformed =
      request(server.port(), post("/v1/sweep", "{"));
  EXPECT_EQ(malformed.status, 400);
  EXPECT_EQ(malformed.head.find("Transfer-Encoding"), std::string::npos);
  server.stop();
}

TEST(ServerSocket, MidStreamDisconnectLeavesGaugesConsistent) {
  ServeOptions options = test_options();
  options.workers = 1;  // a leaked slot would visibly wedge this server
  Server server{options};
  server.start();

  // A sweep big enough to still be streaming when the client vanishes.
  const std::string body =
      R"({"scenario": "promise-cycle", "sizes": [6, 8, 10, 12, 14], "trials": 48, "seed": 3})";
  const int fd = connect_to(server.port());
  send_raw(fd, post("/v1/sweep", body));
  char buf[128];
  ASSERT_GT(::recv(fd, buf, sizeof(buf), 0), 0);  // the stream has started
  ::close(fd);  // ...and the client is gone mid-stream

  // The worker notices on a failed chunk write, abandons the sweep, and
  // releases its slot: both gauges must return to zero, nothing leaked.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool settled = false;
  while (std::chrono::steady_clock::now() < deadline && !settled) {
    const MetricsSnapshot m = server.metrics();
    settled = m.in_flight == 0 && m.queue_depth == 0;
    if (!settled) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(settled);

  // The single worker is free again and /v1/metrics agrees with itself:
  // the metrics connection is the only one in flight, the queue is empty.
  const ClientResponse metrics = request(server.port(), get("/v1/metrics"));
  ASSERT_EQ(metrics.status, 200);
  const JsonValue m = parse_json(metrics.body);
  EXPECT_EQ(m.find("in_flight")->as_integer(), 1);
  EXPECT_EQ(m.find("queue_depth")->as_integer(), 0);
  server.stop();
}

// ---------------------------------------------------------------------------
// Observability surfaces
// ---------------------------------------------------------------------------

// Simple unlabeled samples from a Prometheus exposition: name -> value text.
std::map<std::string, std::string> prometheus_samples(
    const std::string& text) {
  std::map<std::string, std::string> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const std::string name = line.substr(0, space);
    if (name.find('{') != std::string::npos) continue;  // labeled child
    samples[name] = line.substr(space + 1);
  }
  return samples;
}

TEST(ServerSocket, PrometheusEndpointAgreesWithJsonMetrics) {
  Server server{test_options()};
  server.start();
  // Give the cache and canon counters something to count.
  ASSERT_EQ(request(server.port(),
                    post("/v1/run", R"({"scenario": "promise-halting"})"))
                .status,
            200);
  ASSERT_EQ(request(server.port(),
                    post("/v1/run", R"({"scenario": "promise-halting"})"))
                .status,
            200);

  const ClientResponse prom = request(server.port(), get("/metrics"));
  ASSERT_EQ(prom.status, 200);
  EXPECT_NE(prom.head.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  // Exposition shape: HELP/TYPE pairs for the core families, a histogram
  // closed by its mandatory +Inf bucket.
  EXPECT_NE(prom.body.find("# HELP locald_http_requests_total "),
            std::string::npos);
  EXPECT_NE(prom.body.find("# TYPE locald_http_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(prom.body.find("# TYPE locald_http_request_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(
      prom.body.find("locald_http_request_seconds_bucket{le=\"+Inf\"} "),
      std::string::npos);

  const ClientResponse json = request(server.port(), get("/v1/metrics"));
  ASSERT_EQ(json.status, 200);
  const JsonValue m = parse_json(json.body);
  const auto samples = prometheus_samples(prom.body);

  // The two surfaces render the same instruments. Compare the counters a
  // GET scrape cannot itself move: cache and canonicalization totals.
  EXPECT_EQ(samples.at("locald_cache_hits_total"),
            std::to_string(m.find("cache")->find("hits")->as_integer()));
  EXPECT_EQ(samples.at("locald_cache_misses_total"),
            std::to_string(m.find("cache")->find("misses")->as_integer()));
  EXPECT_EQ(samples.at("locald_canon_forms_total"),
            std::to_string(m.find("canon")->find("forms")->as_integer()));
  EXPECT_EQ(
      samples.at("locald_canon_census_balls_total"),
      std::to_string(m.find("canon")->find("census_balls")->as_integer()));

  // The process section is populated on both surfaces.
  EXPECT_GT(m.find("process")->find("peak_rss_kb")->as_integer(), 0);
  EXPECT_GE(m.find("process")->find("uptime_seconds")->as_double(), 0.0);
  EXPECT_GT(std::stoll(samples.at("locald_process_peak_rss_kb")), 0);
  server.stop();
}

TEST(ServerSocket, AccessLogRecordsEveryRequest) {
  const std::string log_path = "test_server_access.log";
  std::remove(log_path.c_str());
  ServeOptions options = test_options();
  options.access_log_path = log_path;
  Server server{options};
  server.start();
  ASSERT_EQ(request(server.port(),
                    post("/v1/run", R"({"scenario": "promise-halting"})"))
                .status,
            200);
  ASSERT_EQ(request(server.port(), get("/nope")).status, 404);
  server.stop();  // joins workers: every finished request is flushed

  std::ifstream in(log_path);
  std::string line;
  std::vector<JsonValue> lines;
  while (std::getline(in, line)) {
    lines.push_back(parse_json(line));
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].find("method")->as_string(), "POST");
  EXPECT_EQ(lines[0].find("path")->as_string(), "/v1/run");
  EXPECT_EQ(lines[0].find("status")->as_integer(), 200);
  EXPECT_GT(lines[0].find("bytes")->as_integer(), 0);
  EXPECT_GE(lines[0].find("duration_ms")->as_double(), 0.0);
  EXPECT_GE(lines[0].find("worker")->as_integer(), 0);
  EXPECT_GE(lines[0].find("cache_hits")->as_integer(), 0);
  EXPECT_EQ(lines[1].find("method")->as_string(), "GET");
  EXPECT_EQ(lines[1].find("path")->as_string(), "/nope");
  EXPECT_EQ(lines[1].find("status")->as_integer(), 404);
  std::remove(log_path.c_str());
}

TEST(ServerSocket, TraceOutWritesChromeTraceOnStop) {
  const std::string trace_path = "test_server_trace.json";
  std::remove(trace_path.c_str());
  ServeOptions options = test_options();
  options.trace_out = trace_path;
  Server server{options};
  server.start();
  ASSERT_EQ(request(server.port(),
                    post("/v1/run", R"({"scenario": "promise-halting"})"))
                .status,
            200);
  server.stop();  // disables the session and writes the file

  std::ifstream in(trace_path);
  std::stringstream buf;
  buf << in.rdbuf();
  const JsonValue root = parse_json(buf.str());
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_request = false;
  bool saw_run_document = false;
  for (const JsonValue& e : events->items()) {
    const std::string& name = e.find("name")->as_string();
    saw_request = saw_request || name == "http-request";
    saw_run_document = saw_run_document || name == "run-document";
  }
  EXPECT_TRUE(saw_request);
  EXPECT_TRUE(saw_run_document);
  std::remove(trace_path.c_str());
}

// ---------------------------------------------------------------------------
// Multi-process serving: writer + follower over one shared store
// ---------------------------------------------------------------------------

// A self-cleaning store directory for the shared-store tests.
struct StoreTempDir {
  std::string path;
  StoreTempDir() {
    std::string tmpl = "/tmp/locald-serve-store-XXXXXX";
    LOCALD_CHECK(::mkdtemp(tmpl.data()) != nullptr, "mkdtemp failed");
    path = tmpl;
  }
  ~StoreTempDir() {
    DIR* dir = ::opendir(path.c_str());
    if (dir != nullptr) {
      while (dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..") {
          ::unlink((path + "/" + name).c_str());
        }
      }
      ::closedir(dir);
    }
    ::rmdir(path.c_str());
  }
};

TEST(ServerSocket, WriterAndFollowerShareOneStoreByteIdentically) {
  StoreTempDir dir;
  ServeOptions writer_options = test_options();
  writer_options.store_path = dir.path;
  writer_options.store_shards = 4;
  Server writer{writer_options};
  writer.start();

  // A second writer on the same directory must fail fast at start() —
  // before any socket binds — with the lease held by the first.
  Server conflicted{writer_options};
  try {
    conflicted.start();
    FAIL() << "second writer must be rejected while the lease is held";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("live writer"),
              std::string::npos);
  }

  ServeOptions follower_options = writer_options;
  follower_options.store_follower = true;
  Server follower{follower_options};
  follower.start();

  // Warm the store through the writer, then ask the follower the same
  // question: its answer comes off the shared log via tail refresh and the
  // bodies must be byte-identical.
  const std::string wire =
      post("/v1/run", R"({"scenario": "promise-halting", "seed": 7})");
  const ClientResponse from_writer = request(writer.port(), wire);
  ASSERT_EQ(from_writer.status, 200);
  const ClientResponse from_follower = request(follower.port(), wire);
  ASSERT_EQ(from_follower.status, 200);
  EXPECT_EQ(from_follower.body, from_writer.body);

  // Both processes report their role on /v1/metrics; the follower's store
  // section carries the tail-refresh counters.
  const JsonValue writer_metrics =
      parse_json(request(writer.port(), get("/v1/metrics")).body);
  EXPECT_EQ(writer_metrics.find("store")->find("role")->as_string(),
            "writer");
  const JsonValue follower_metrics =
      parse_json(request(follower.port(), get("/v1/metrics")).body);
  EXPECT_EQ(follower_metrics.find("store")->find("role")->as_string(),
            "follower");
  EXPECT_GE(
      follower_metrics.find("store")->find("tail_refreshes")->as_integer(),
      1);
  EXPECT_GT(follower_metrics.find("cache")->find("store_hits")->as_integer(),
            0);

  // The role gauge reaches the Prometheus surface too. (Both servers share
  // this process's registry and the follower registered last — last
  // registration wins the export — so only its value is asserted here; the
  // one-process-per-role case is covered by the CI serve smoke.)
  const std::string follower_prom =
      request(follower.port(), get("/metrics")).body;
  EXPECT_NE(follower_prom.find("locald_store_follower 1"),
            std::string::npos);

  // The follower outliving the writer keeps serving from the shared log.
  writer.stop();
  const ClientResponse after = request(follower.port(), wire);
  ASSERT_EQ(after.status, 200);
  EXPECT_EQ(after.body, from_writer.body);
  follower.stop();
}

}  // namespace
}  // namespace locald::server
