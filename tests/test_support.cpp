// Unit tests for the support module: checked errors, RNG determinism and
// distribution sanity, hashing stability, text formatting, JSON reading
// and writing.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "support/check.h"
#include "support/format.h"
#include "support/hash.h"
#include "support/json.h"
#include "support/rng.h"

namespace locald {
namespace {

TEST(Check, CheckThrowsError) {
  EXPECT_THROW(LOCALD_CHECK(false, "bad input"), Error);
  EXPECT_NO_THROW(LOCALD_CHECK(true, "fine"));
}

TEST(Check, AssertThrowsBugError) {
  EXPECT_THROW(LOCALD_ASSERT(false, "broken invariant"), BugError);
  EXPECT_NO_THROW(LOCALD_ASSERT(true, "fine"));
}

TEST(Check, MessageCarriesLocationAndText) {
  try {
    LOCALD_CHECK(1 == 2, "custom context");
    FAIL() << "expected a throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += (a.next_u64() == b.next_u64());
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), Error);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    hits += rng.bernoulli(0.25);
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, GeometricCoinMeanIsTwo) {
  Rng rng(17);
  long long total = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const int t = rng.coin_tosses_until_head();
    ASSERT_GE(t, 1);
    total += t;
  }
  EXPECT_NEAR(static_cast<double>(total) / trials, 2.0, 0.1);
}

TEST(Rng, SampleDistinctProducesDistinctValues) {
  Rng rng(19);
  for (std::size_t k : {0UL, 1UL, 5UL, 50UL, 100UL}) {
    const auto s = rng.sample_distinct(100, k);
    EXPECT_EQ(s.size(), k);
    const std::set<std::uint64_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (auto v : s) {
      EXPECT_LT(v, 100u);
    }
  }
}

TEST(Rng, SampleDistinctRejectsOversample) {
  Rng rng(23);
  EXPECT_THROW(rng.sample_distinct(3, 4), Error);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(31);
  Rng c1 = parent.split();
  Rng c2 = parent.split();
  EXPECT_NE(c1.next_u64(), c2.next_u64());
}

TEST(Hash, Fnv1aStableKnownValue) {
  // Regression anchor: canonical fingerprints must be stable across builds.
  const std::uint64_t h = fnv1a("abc", 3);
  EXPECT_EQ(h, fnv1a("abc", 3));
  EXPECT_NE(h, fnv1a("abd", 3));
}

TEST(Hash, VectorHashingDistinguishesLengthAndOrder) {
  EXPECT_NE(hash_i64_vector({1, 2}), hash_i64_vector({2, 1}));
  EXPECT_NE(hash_i64_vector({1}), hash_i64_vector({1, 0}));
  EXPECT_EQ(hash_i64_vector({5, 6, 7}), hash_i64_vector({5, 6, 7}));
}

TEST(Format, CatConcatenatesMixedTypes) {
  EXPECT_EQ(cat("r=", 3, ", p=", 1.5), "r=3, p=1.5");
}

TEST(Format, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(Format, FixedDigits) {
  EXPECT_EQ(fixed(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(fixed(2.0, 1), "2.0");
}

TEST(Format, TextTableAlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Format, TextTableRejectsRaggedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Format, TextTableRendersCsv) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  EXPECT_EQ(t.render_csv(), "name,value\nalpha,1\nb,22222\n");
}

TEST(Format, TextTableCsvQuotesSpecialCharacters) {
  TextTable t({"cell"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  t.add_row({"has\nnewline"});
  EXPECT_EQ(t.render_csv(),
            "cell\n\"has,comma\"\n\"has\"\"quote\"\n\"has\nnewline\"\n");
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_EQ(parse_json("42").as_integer(), 42);
  EXPECT_EQ(parse_json("-7").as_integer(), -7);
  EXPECT_DOUBLE_EQ(parse_json("1.5").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(parse_json("2e3").as_double(), 2000.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, IntegerVsDoubleDistinction) {
  EXPECT_TRUE(parse_json("3").is_integer());
  EXPECT_FALSE(parse_json("3.0").is_integer());
  EXPECT_FALSE(parse_json("3e0").is_integer());
  // Integral numbers still read as doubles; non-integral ones refuse
  // as_integer (precision would be silently lost).
  EXPECT_DOUBLE_EQ(parse_json("3").as_double(), 3.0);
  EXPECT_THROW(parse_json("3.5").as_integer(), Error);
}

TEST(Json, ParsesContainersPreservingOrder) {
  const JsonValue v = parse_json(
      R"({"b": [1, 2, 3], "a": {"nested": true}, "c": null})");
  ASSERT_TRUE(v.is_object());
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "b");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "c");
  ASSERT_NE(v.find("b"), nullptr);
  EXPECT_EQ(v.find("b")->items().size(), 3u);
  EXPECT_EQ(v.find("b")->items()[2].as_integer(), 3);
  EXPECT_EQ(v.find("a")->find("nested")->as_bool(), true);
  EXPECT_TRUE(v.find("c")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(Json, DecodesStringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parse_json(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(parse_json(R"("\u20ac")").as_string(), "\xE2\x82\xAC");  // €
  // Surrogate pair: U+1F600 in UTF-16 escapes.
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").as_string(),
            "\xF0\x9F\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "  ", "{", "[1,", "{\"a\":}", "tru", "1 2", "{\"a\":1} x",
        "\"unterminated", "\"bad \\q escape\"", "01", "1.", "+1", "--1",
        "{\"a\":1,\"a\":2}", "\"\\ud83d\"", "\"\x01\"", "[1,]", "{,}",
        "NaN", "Infinity"}) {
    EXPECT_THROW(parse_json(bad), Error) << "accepted: " << bad;
  }
}

TEST(Json, RejectsRunawayNesting) {
  const std::string deep(100, '[');
  EXPECT_THROW(parse_json(deep), Error);
  // 100 well-formed levels still exceed the 64-level cap.
  std::string nested = std::string(100, '[') + "1" + std::string(100, ']');
  EXPECT_THROW(parse_json(nested), Error);
}

TEST(Json, AccessorsRejectWrongKind) {
  const JsonValue v = parse_json("\"text\"");
  EXPECT_THROW(v.as_bool(), Error);
  EXPECT_THROW(v.as_integer(), Error);
  EXPECT_THROW(v.items(), Error);
  EXPECT_THROW(v.members(), Error);
  EXPECT_EQ(v.find("x"), nullptr);  // non-objects report "absent"
}

TEST(JsonWriter, CompactObject) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  w.key("name");
  w.value("locald");
  w.key("n");
  w.value(3);
  w.key("ok");
  w.value(true);
  w.key("rate");
  w.value(0.5, 3);
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(out.str(), R"({"name":"locald","n":3,"ok":true,"rate":0.500})");
}

TEST(JsonWriter, PrettyPrintsNestedContainers) {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object();
  w.key("cells");
  w.begin_array();
  w.begin_object();
  w.key("size");
  w.value(6);
  w.end_object();
  w.end_array();
  w.key("empty");
  w.begin_array();
  w.end_array();
  w.end_object();
  EXPECT_EQ(out.str(),
            "{\n"
            "  \"cells\": [\n"
            "    {\n"
            "      \"size\": 6\n"
            "    }\n"
            "  ],\n"
            "  \"empty\": []\n"
            "}");
}

TEST(JsonWriter, OutputRoundTripsThroughParser) {
  std::ostringstream out;
  JsonWriter w(out, 2);
  w.begin_object();
  w.key("quoted \"key\"");
  w.value("line\nbreak");
  w.key("big");
  w.value(std::uint64_t{18446744073709551615ull});
  w.key("neg");
  w.value(std::int64_t{-9000000000000000000ll});
  w.key("nothing");
  w.null_value();
  w.end_object();
  const JsonValue v = parse_json(out.str());
  EXPECT_EQ(v.find("quoted \"key\"")->as_string(), "line\nbreak");
  // 2^64-1 does not fit int64; the reader degrades it to a double.
  EXPECT_FALSE(v.find("big")->is_integer());
  EXPECT_EQ(v.find("neg")->as_integer(), -9000000000000000000ll);
  EXPECT_TRUE(v.find("nothing")->is_null());
}

TEST(JsonWriter, MisuseThrowsBugError) {
  std::ostringstream out;
  JsonWriter w(out);
  w.begin_object();
  EXPECT_THROW(w.value(1), BugError);       // member value without a key
  EXPECT_THROW(w.end_array(), BugError);    // mismatched container
  w.key("k");
  EXPECT_THROW(w.key("k2"), BugError);      // key while a key is pending
  w.value(1);
  w.end_object();
  EXPECT_THROW(w.value(2), BugError);       // writing past the root
}

}  // namespace
}  // namespace locald
