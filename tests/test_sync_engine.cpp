// Tests for the message-passing view of LOCAL: knowledge serialization,
// flooding, ball reconstruction, and the equivalence between t-round
// message passing and direct ball evaluation.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "local/simulator.h"
#include "local/sync_engine.h"
#include "props/properties.h"

namespace locald::local {
namespace {

using graph::make_cycle;
using graph::make_grid;
using graph::make_path;

TEST(Knowledge, EncodeDecodeRoundTrip) {
  Knowledge k;
  k.emplace(7, KnownNode{7, Label{1, -2}, {3, 9}});
  k.emplace(3, KnownNode{3, Label{}, {}});
  k.emplace(9, KnownNode{9, Label{5}, {7}});
  const std::string payload = encode_knowledge(7, k);
  const auto [self, decoded] = decode_knowledge(payload);
  EXPECT_EQ(self, 7u);
  EXPECT_EQ(decoded, k);
}

TEST(Knowledge, MalformedPayloadRejected) {
  EXPECT_THROW(decode_knowledge(""), Error);
  EXPECT_THROW(decode_knowledge("5\nnot-a-line\n"), Error);
}

TEST(Knowledge, BallReconstructionMatchesExtraction) {
  // Build knowledge by hand for a 5-cycle with ids = node index, then check
  // the reconstructed radius-1 ball around node 0.
  const graph::CsrGraph c5 = make_cycle(5);
  Knowledge k;
  for (graph::NodeId v = 0; v < 5; ++v) {
    KnownNode node;
    node.id = static_cast<Id>(v);
    node.label = Label{v};
    for (graph::NodeId w : c5.neighbors(v)) {
      node.adj.push_back(static_cast<Id>(w));
    }
    k.emplace(node.id, node);
  }
  const Ball ball = ball_from_knowledge(0, k, 1);
  EXPECT_EQ(ball.node_count(), 3);
  EXPECT_EQ(ball.center_label(), Label{0});
  ASSERT_TRUE(ball.has_ids());

  LabeledGraph lg(c5, {Label{0}, Label{1}, Label{2}, Label{3}, Label{4}});
  const IdAssignment ids = make_consecutive(5);
  const Ball direct = extract_ball(lg, &ids, 0, 1);
  EXPECT_EQ(ball.canonical_encoding(), direct.canonical_encoding());
}

TEST(Knowledge, ReconstructionIgnoresNodesBeyondRadius) {
  const graph::CsrGraph p5 = make_path(5);
  Knowledge k;
  for (graph::NodeId v = 0; v < 5; ++v) {
    KnownNode node;
    node.id = static_cast<Id>(v);
    node.label = Label{};
    for (graph::NodeId w : p5.neighbors(v)) {
      node.adj.push_back(static_cast<Id>(w));
    }
    k.emplace(node.id, node);
  }
  EXPECT_EQ(ball_from_knowledge(2, k, 1).node_count(), 3);
  EXPECT_EQ(ball_from_knowledge(2, k, 2).node_count(), 5);
}

// The headline equivalence: running any local algorithm through t+1 rounds
// of full-information flooding produces exactly the per-node outputs of
// direct ball evaluation.
void expect_equivalence(const LocalAlgorithm& alg, const LabeledGraph& g,
                        const IdAssignment& ids) {
  const RunResult direct = run_local_algorithm(alg, g, ids);
  const std::vector<Verdict> via_mp = run_via_message_passing(alg, g, ids);
  EXPECT_EQ(direct.outputs, via_mp) << alg.name();
}

TEST(Equivalence, ColoringDeciderOnCycle) {
  LabeledGraph g(make_cycle(6), {Label{0}, Label{1}, Label{0}, Label{1},
                                 Label{0}, Label{1}});
  Rng rng(4);
  const IdAssignment ids = make_random_unbounded(6, 1000, rng);
  expect_equivalence(*props::proper_coloring_decider(2), g, ids);
}

TEST(Equivalence, IdAwareAlgorithmOnGrid) {
  LabeledGraph g = LabeledGraph::uniform(make_grid(4, 3), Label{1});
  Rng rng(5);
  const IdAssignment ids = make_random_unbounded(12, 500, rng);
  // Id-aware horizon-2 algorithm: reject iff some ball node has id > 400.
  const auto alg = make_id_aware("big-id", 2, [](const BallView& b) {
    for (graph::NodeId v = 0; v < b.node_count(); ++v) {
      if (b.id_of(v) > 400) return Verdict::no;
    }
    return Verdict::yes;
  });
  expect_equivalence(*alg, g, ids);
}

TEST(Equivalence, HorizonZero) {
  LabeledGraph g = LabeledGraph::uniform(make_path(4), Label{2});
  const IdAssignment ids = make_consecutive(4);
  const auto alg = make_oblivious("label-check", 0, [](const BallView& b) {
    return b.center_label().at(0) == 2 ? Verdict::yes : Verdict::no;
  });
  expect_equivalence(*alg, g, ids);
}

struct EquivParam {
  int n;
  int extra;
  int horizon;
  std::uint64_t seed;
};

class EquivalenceSweep : public ::testing::TestWithParam<EquivParam> {};

TEST_P(EquivalenceSweep, RandomGraphsRandomHorizons) {
  const auto p = GetParam();
  Rng rng(p.seed);
  const graph::CsrGraph raw = graph::make_random_connected(
      static_cast<graph::NodeId>(p.n), static_cast<graph::NodeId>(p.extra),
      p.seed);
  LabeledGraph g(raw);
  for (graph::NodeId v = 0; v < g.node_count(); ++v) {
    g.set_label(v, Label{static_cast<std::int64_t>(rng.below(3))});
  }
  const IdAssignment ids =
      make_random_unbounded(g.node_count(), 10'000, rng);
  // A structurally sensitive oblivious algorithm: parity of the ball's edge
  // count, biased by the centre label.
  const auto alg = make_oblivious(
      "ball-parity", p.horizon, [](const BallView& b) {
        const auto parity =
            (b.g.edge_count() + static_cast<std::size_t>(
                                    b.center_label().at(0))) % 2;
        return parity == 0 ? Verdict::yes : Verdict::no;
      });
  expect_equivalence(*alg, g, ids);
}

INSTANTIATE_TEST_SUITE_P(
    Random, EquivalenceSweep,
    ::testing::Values(EquivParam{8, 4, 1, 11}, EquivParam{12, 6, 2, 12},
                      EquivParam{16, 10, 1, 13}, EquivParam{16, 3, 3, 14},
                      EquivParam{24, 12, 2, 15}, EquivParam{30, 20, 1, 16},
                      EquivParam{10, 35, 2, 17}));

}  // namespace
}  // namespace locald::local
