// Tests for the Turing-machine substrate: machine validation and encoding,
// the reference simulator, the zoo's ground truths, execution tables, and
// the agreement between tables and the direct simulation.
#include <gtest/gtest.h>

#include "tm/machine.h"
#include "tm/run.h"
#include "tm/table.h"
#include "tm/zoo.h"

namespace locald::tm {
namespace {

TEST(Machine, ConstructionValidation) {
  EXPECT_THROW(TuringMachine("too-few", 2, 2), Error);
  EXPECT_THROW(TuringMachine("no-alphabet", 3, 0), Error);
  TuringMachine m("ok", 3, 2);
  EXPECT_EQ(m.working_state_count(), 1);
  EXPECT_EQ(m.halt0(), 1);
  EXPECT_EQ(m.halt1(), 2);
  EXPECT_TRUE(m.is_halting(1));
  EXPECT_TRUE(m.is_halting(2));
  EXPECT_FALSE(m.is_halting(0));
  EXPECT_EQ(m.halt_output(1), 0);
  EXPECT_EQ(m.halt_output(2), 1);
  EXPECT_THROW(m.halt_output(0), Error);
}

TEST(Machine, TransitionRules) {
  TuringMachine m("t", 3, 2);
  EXPECT_THROW(m.delta(0, 0), Error);  // not yet defined
  m.set_transition(0, 0, Transition{1, 1, Move::right});
  EXPECT_EQ(m.delta(0, 0).next_state, 1);
  EXPECT_THROW(m.set_transition(1, 0, Transition{0, 0, Move::right}), Error)
      << "halting states have no outgoing transitions";
  EXPECT_THROW(m.validate(), Error) << "missing (0, 1)";
  m.set_transition(0, 1, Transition{2, 0, Move::left});
  EXPECT_NO_THROW(m.validate());
}

TEST(Machine, EncodeDecodeRoundTrip) {
  for (const ZooEntry& e : full_zoo()) {
    const TuringMachine decoded = TuringMachine::decode(e.machine.encode());
    EXPECT_EQ(decoded, e.machine) << e.machine.name();
  }
}

TEST(Machine, DecodeRejectsMalformed) {
  EXPECT_THROW(TuringMachine::decode({}), Error);
  EXPECT_THROW(TuringMachine::decode({3, 2, 1}), Error);
}

TEST(Machine, CellCodes) {
  TuringMachine m("c", 4, 3);  // 2 working states + 2 halting, 3 symbols
  EXPECT_EQ(m.cell_code_count(), 3 * 5);
  EXPECT_EQ(m.plain_cell(2), 2);
  EXPECT_FALSE(m.cell_has_head(2));
  const int h = m.head_cell(1, 2);
  EXPECT_TRUE(m.cell_has_head(h));
  EXPECT_EQ(m.cell_state(h), 1);
  EXPECT_EQ(m.cell_symbol(h), 2);
  EXPECT_EQ(m.cell_symbol(m.plain_cell(1)), 1);
  EXPECT_THROW(m.cell_state(1), Error);
  // Codes are a bijection over (state?, symbol).
  std::set<int> seen;
  for (int s = 0; s < 3; ++s) {
    EXPECT_TRUE(seen.insert(m.plain_cell(s)).second);
  }
  for (int q = 0; q < 4; ++q) {
    for (int s = 0; s < 3; ++s) {
      EXPECT_TRUE(seen.insert(m.head_cell(q, s)).second);
    }
  }
}

TEST(Run, HaltAfterRunsExactly) {
  for (int k : {1, 2, 3, 7, 20}) {
    for (int out : {0, 1}) {
      const TuringMachine m = halt_after(k, out);
      const RunOutcome res = run_machine(m, 1000);
      EXPECT_TRUE(res.halted);
      EXPECT_EQ(res.steps, k);
      EXPECT_EQ(res.output, out);
    }
  }
}

TEST(Run, BudgetRespected) {
  const TuringMachine m = halt_after(10, 0);
  const RunOutcome res = run_machine(m, 5);
  EXPECT_FALSE(res.halted);
  EXPECT_EQ(res.steps, 5);
  EXPECT_EQ(res.output, -1);
}

TEST(Run, NonHaltingMachinesKeepRunning) {
  for (const TuringMachine& m :
       {bouncer(), right_drifter(), crawler(), zigzag_expander()}) {
    const RunOutcome res = run_machine(m, 10'000);
    EXPECT_FALSE(res.halted) << m.name();
    EXPECT_EQ(res.steps, 10'000) << m.name();
  }
}

TEST(Run, BouncerStaysInTwoCells) {
  const TuringMachine m = bouncer();
  Configuration c;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(step(m, c));
    ASSERT_LE(c.head, 1);
    ASSERT_GE(c.head, 0);
  }
}

TEST(Run, ZigzagExpanderExcursionsGrow) {
  const TuringMachine m = zigzag_expander();
  Configuration c;
  int max_head = 0;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(step(m, c));
    max_head = std::max(max_head, c.head);
  }
  EXPECT_GE(max_head, 50);
}

TEST(Run, ZigzagHaltRuntimeGrowsQuadratically) {
  long long prev = 0;
  for (int rounds = 1; rounds <= 6; ++rounds) {
    const RunOutcome res = run_machine(zigzag_halt(rounds, 0), 100'000);
    ASSERT_TRUE(res.halted);
    EXPECT_GT(res.steps, prev);
    prev = res.steps;
  }
  // Quadratic growth: 12 rounds takes more than 4x the steps of 6 rounds...
  const auto r6 = run_machine(zigzag_halt(6, 0), 1'000'000);
  const auto r12 = run_machine(zigzag_halt(12, 0), 1'000'000);
  EXPECT_GT(r12.steps, 3 * r6.steps);
}

TEST(Run, ZigzagHaltOutputs) {
  EXPECT_EQ(run_machine(zigzag_halt(3, 0), 100'000).output, 0);
  EXPECT_EQ(run_machine(zigzag_halt(3, 1), 100'000).output, 1);
}

TEST(Run, TraceFirstAndLastConfigurations) {
  const TuringMachine m = halt_after(3, 1);
  const auto tr = trace_machine(m, 100);
  ASSERT_EQ(tr.size(), 4u);  // configs before steps 0..3
  EXPECT_EQ(tr[0].state, TuringMachine::kStartState);
  EXPECT_EQ(tr[0].head, 0);
  EXPECT_TRUE(m.is_halting(tr[3].state));
  EXPECT_EQ(tr[3].head, 3);
}

TEST(Zoo, GroundTruthsHold) {
  for (const ZooEntry& e : full_zoo()) {
    const RunOutcome res = run_machine(e.machine, 1'000'000);
    EXPECT_EQ(res.halted, e.halts) << e.machine.name();
    if (e.halts) {
      EXPECT_EQ(res.steps, e.runtime) << e.machine.name();
      EXPECT_EQ(res.output, e.output) << e.machine.name();
    }
  }
}

TEST(Table, BuildMatchesTrace) {
  const TuringMachine m = halt_after(3, 0);
  const ExecutionTable t = ExecutionTable::build(m, 6, 6);
  // Row 0: head at column 0 in the start state, blanks elsewhere.
  EXPECT_EQ(t.cell(0, 0), m.head_cell(0, 0));
  EXPECT_EQ(t.cell(3, 0), m.plain_cell(0));
  // Head advances one column per row.
  EXPECT_EQ(t.head_column(0), 0);
  EXPECT_EQ(t.head_column(1), 1);
  EXPECT_EQ(t.head_column(2), 2);
  EXPECT_EQ(t.head_column(3), 3);
  // Halting at step 3; frozen rows repeat it.
  ASSERT_TRUE(t.halting_step().has_value());
  EXPECT_EQ(*t.halting_step(), 3);
  for (int x = 0; x < 6; ++x) {
    EXPECT_EQ(t.cell(x, 4), t.cell(x, 3));
    EXPECT_EQ(t.cell(x, 5), t.cell(x, 3));
  }
  // Written symbols persist under the frozen rows.
  EXPECT_EQ(m.cell_symbol(t.cell(0, 3)), 1);
}

TEST(Table, EveryRowHasExactlyOneHead) {
  for (const ZooEntry& e : small_zoo()) {
    const ExecutionTable t = ExecutionTable::build(e.machine, 8, 8);
    for (int y = 0; y < t.height(); ++y) {
      int heads = 0;
      for (int x = 0; x < t.width(); ++x) {
        heads += e.machine.cell_has_head(t.cell(x, y));
      }
      EXPECT_EQ(heads, 1) << e.machine.name() << " row " << y;
    }
  }
}

TEST(Table, NonHaltingMachineFillsTable) {
  const ExecutionTable t = ExecutionTable::build(crawler(), 16, 16);
  EXPECT_FALSE(t.halting_step().has_value());
  EXPECT_EQ(t.height(), 16);
}

TEST(Table, PaddedPow2Dimensions) {
  const TuringMachine m = halt_after(5, 0);  // 6 rows -> padded to 8
  const ExecutionTable t = ExecutionTable::build_padded_pow2(m, 1000);
  EXPECT_EQ(t.height(), 8);
  EXPECT_EQ(t.width(), 8);
  EXPECT_EQ(*t.halting_step(), 5);
  const ExecutionTable t2 =
      ExecutionTable::build_padded_pow2(m, 1000, /*minimum_size=*/32);
  EXPECT_EQ(t2.height(), 32);
}

TEST(Table, PaddedPow2RequiresHalting) {
  EXPECT_THROW(ExecutionTable::build_padded_pow2(bouncer(), 100), Error);
}

TEST(Table, WidthMustCoverExcursion) {
  EXPECT_THROW(ExecutionTable::build(halt_after(4, 0), 8, 4), Error);
}

class TableAgreementSweep : public ::testing::TestWithParam<int> {};

// The table's row y equals the trace's configuration before step y,
// including frozen repetition after the halt.
TEST_P(TableAgreementSweep, RowsEqualTraceConfigurations) {
  const auto zoo = full_zoo();
  const ZooEntry& e = zoo[static_cast<std::size_t>(GetParam()) % zoo.size()];
  const int size = 16;
  const ExecutionTable t = ExecutionTable::build(e.machine, size, size);
  const auto tr = trace_machine(e.machine, size);
  for (int y = 0; y < size; ++y) {
    const Configuration& c =
        tr[std::min<std::size_t>(static_cast<std::size_t>(y), tr.size() - 1)];
    for (int x = 0; x < size; ++x) {
      const int symbol =
          x < static_cast<int>(c.tape.size()) ? c.tape[static_cast<std::size_t>(x)] : 0;
      const int expected = (x == c.head)
                               ? e.machine.head_cell(c.state, symbol)
                               : e.machine.plain_cell(symbol);
      ASSERT_EQ(t.cell(x, y), expected)
          << e.machine.name() << " cell (" << x << "," << y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, TableAgreementSweep, ::testing::Range(0, 18));

}  // namespace
}  // namespace locald::tm
