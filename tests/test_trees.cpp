// Tests for the Section-2 construction: patches, instance builders, global
// oracles, the Id-oblivious P' verifier (completeness + mutation soundness),
// the id-based P decider, the coverage audit, and the promise problem.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "local/indistinguishability.h"
#include "local/property.h"
#include "local/simulator.h"
#include "trees/audit.h"
#include "trees/construction.h"
#include "trees/decide.h"
#include "trees/promise_cycle.h"

namespace locald::trees {
namespace {

using local::IdAssignment;
using local::LabeledGraph;
using local::Verdict;

TreeParams params(int r) {
  TreeParams p;
  p.r = r;
  p.f = local::IdBound::linear_plus(1);
  return p;
}

TEST(TreeParams, CapitalR) {
  EXPECT_EQ(params(1).capital_R(), 7);   // f(2^2 + 1 + 1) = 6 + 1
  EXPECT_EQ(params(2).capital_R(), 12);  // f(8 + 3)
  EXPECT_EQ(params(3).capital_R(), 21);  // f(16 + 4)
}

TEST(Patch, SubtreeAndContainment) {
  const TreeParams p = params(2);
  const Patch h = subtree_patch(p, 1, 2);  // root (1, 2), depth 2
  EXPECT_EQ(h.bottom_left, 4);
  EXPECT_EQ(h.bottom_right, 7);
  EXPECT_EQ(h.node_count(), 7);
  EXPECT_TRUE(h.contains(1, 2));
  EXPECT_TRUE(h.contains(2, 3));
  EXPECT_TRUE(h.contains(5, 4));
  EXPECT_FALSE(h.contains(0, 2));
  EXPECT_FALSE(h.contains(8, 4));
  EXPECT_FALSE(h.contains(1, 1));
  EXPECT_TRUE(h.valid(p));
}

TEST(Patch, TrapezoidIntervals) {
  Patch h;
  h.r = 3;
  h.y0 = 2;
  h.bottom_left = 5;
  h.bottom_right = 12;
  EXPECT_EQ(h.left(3), 5);
  EXPECT_EQ(h.right(3), 12);
  EXPECT_EQ(h.left(2), 2);
  EXPECT_EQ(h.right(2), 6);
  EXPECT_EQ(h.left(1), 1);
  EXPECT_EQ(h.right(1), 3);
  EXPECT_EQ(h.left(0), 0);
  EXPECT_EQ(h.right(0), 1);
  EXPECT_EQ(h.node_count(), 8 + 5 + 3 + 2);
}

TEST(Patch, BorderOfRootSubtree) {
  const TreeParams p = params(2);
  const Coord R = p.capital_R();
  const Patch h = subtree_patch(p, 0, 0);
  // Root subtree: only the bottom row is border (children exist below since
  // y0 + r = 2 < R).
  const auto border = expected_border(h, R);
  ASSERT_EQ(border.size(), 4u);
  for (const auto& c : border) {
    EXPECT_EQ(c.y, 2);
  }
  EXPECT_FALSE(is_border(h, 0, 0, R));
  EXPECT_FALSE(is_border(h, 1, 1, R));
}

TEST(Patch, BorderOfMidSubtree) {
  const TreeParams p = params(2);
  const Coord R = p.capital_R();
  const Patch h = subtree_patch(p, 1, 2);  // interior root
  // Border: root (parent + level-neighbours outside), side columns, bottom.
  EXPECT_TRUE(is_border(h, 1, 2, R));
  EXPECT_TRUE(is_border(h, 2, 3, R));   // left column
  EXPECT_TRUE(is_border(h, 3, 3, R));   // right column
  EXPECT_TRUE(is_border(h, 5, 4, R));   // bottom row
  const auto border = expected_border(h, R);
  EXPECT_EQ(border.size(), 1u + 2u + 4u);  // root + two level-1 + bottom 4
}

TEST(Patch, AlignmentBoundaryNodeHasNoSubtreeWitnessButPatchWitness) {
  // The reproduction finding: x = 2^r at the bottom level is on the left
  // column of every aligned subtree containing it, yet a trapezoid patch
  // covers it.
  const TreeParams p = params(3);
  const Coord R = p.capital_R();
  const Coord x = 8;  // 2^r
  EXPECT_FALSE(has_subtree_witness(p, x, R));
  const auto w = witness_patch(p, x, R);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->contains(x, R));
  EXPECT_FALSE(is_border(*w, x, R, R));
  // An interior bottom node has a subtree witness just fine.
  EXPECT_TRUE(has_subtree_witness(p, 3, R));
}

TEST(Builders, TShape) {
  const TreeParams p = params(2);
  const LabeledGraph T = build_T(p);
  EXPECT_EQ(T.node_count(), (1 << 13) - 1);
  EXPECT_EQ(T.label(0), tree_label(2, 0, 0));
  EXPECT_EQ(T.label(4), tree_label(2, 1, 2));
  EXPECT_TRUE(is_T(p, T));
  EXPECT_FALSE(is_patch_instance(p, T));
}

TEST(Builders, PatchInstanceShape) {
  const TreeParams p = params(2);
  const Patch h = subtree_patch(p, 1, 2);
  const LabeledGraph g = build_patch_instance(p, h);
  EXPECT_EQ(g.node_count(), 8);  // 7 patch nodes + pivot
  EXPECT_EQ(g.label(7), pivot_label(2));
  EXPECT_TRUE(is_patch_instance(p, g));
  EXPECT_FALSE(is_T(p, g));
  // Pivot degree equals the border size.
  EXPECT_EQ(g.graph().degree(7), 7);
}

TEST(Oracles, RejectMutations) {
  const TreeParams p = params(2);
  const Patch h = subtree_patch(p, 0, 1);
  const LabeledGraph good = build_patch_instance(p, h);
  ASSERT_TRUE(is_patch_instance(p, good));

  LabeledGraph bad_label = good;
  bad_label.set_label(2, tree_label(2, 5, 5));
  EXPECT_FALSE(is_patch_instance(p, bad_label));

  LabeledGraph extra_edge = good;
  // Connect two non-adjacent tree nodes (coords not adjacent).
  bool added = false;
  for (graph::NodeId u = 0; u < good.node_count() - 1 && !added; ++u) {
    for (graph::NodeId v = u + 1; v < good.node_count() - 1 && !added; ++v) {
      const auto& lu = good.label(u);
      const auto& lv = good.label(v);
      if (!coords_adjacent({lu.at(2), lu.at(3)}, {lv.at(2), lv.at(3)},
                           p.capital_R()) &&
          !good.graph().has_edge(u, v)) {
        graph::GraphBuilder builder(good.node_count());
        for (const auto& [a, b] : good.graph().edges()) {
          builder.add_edge(a, b);
        }
        builder.add_edge(u, v);
        extra_edge = LabeledGraph(builder.build(), good.labels());
        added = true;
      }
    }
  }
  ASSERT_TRUE(added);
  EXPECT_FALSE(is_patch_instance(p, extra_edge));

  LabeledGraph two_pivots = good;
  two_pivots.set_label(0, pivot_label(2));
  EXPECT_FALSE(is_patch_instance(p, two_pivots));
}

TEST(Verifier, AcceptsPatchInstancesAndT) {
  const TreeParams p = params(2);
  const auto verifier = make_P_prime_verifier(p);
  EXPECT_TRUE(local::run_oblivious(*verifier, build_T(p)).accepted);
  const Coord R = p.capital_R();
  // Sweep a variety of patches: aligned and trapezoidal, at several levels.
  std::vector<Patch> patches;
  patches.push_back(subtree_patch(p, 0, 0));
  patches.push_back(subtree_patch(p, 1, 2));
  patches.push_back(subtree_patch(p, 5, 3));
  patches.push_back(subtree_patch(p, 0, static_cast<Coord>(R) - 2));
  for (const auto& [y0, bL, bR] :
       std::vector<std::tuple<Coord, Coord, Coord>>{
           {1, 3, 6}, {2, 5, 8}, {3, 17, 20}, {R - 2, 100, 103},
           {R - 2, 0, 3}, {4, 33, 36}}) {
    Patch h;
    h.r = p.r;
    h.y0 = y0;
    h.bottom_left = bL;
    h.bottom_right = bR;
    ASSERT_TRUE(h.valid(p)) << y0 << " " << bL << " " << bR;
    patches.push_back(h);
  }
  for (const Patch& h : patches) {
    const LabeledGraph g = build_patch_instance(p, h);
    const auto run = local::run_oblivious(*verifier, g);
    EXPECT_TRUE(run.accepted)
        << "patch y0=" << h.y0 << " [" << h.bottom_left << ","
        << h.bottom_right << "] rejected at node "
        << (run.first_rejecting ? *run.first_rejecting : -1);
  }
}

TEST(Verifier, RejectsLabelMutations) {
  const TreeParams p = params(2);
  const auto verifier = make_P_prime_verifier(p);
  const LabeledGraph good = build_patch_instance(p, subtree_patch(p, 1, 2));
  Rng rng(31);
  int rejected = 0;
  const int trials = 30;
  for (int i = 0; i < trials; ++i) {
    LabeledGraph bad = good;
    const graph::NodeId v =
        static_cast<graph::NodeId>(rng.below(good.node_count()));
    // Corrupt one label field.
    local::Label l = bad.label(v);
    std::vector<std::int64_t> fields = l.fields();
    fields[rng.below(fields.size())] += 1 + static_cast<std::int64_t>(rng.below(3));
    bad.set_label(v, local::Label(fields));
    if (!local::run_oblivious(*verifier, bad).accepted) {
      ++rejected;
    }
  }
  // Every single-label corruption must be caught (labels are load-bearing).
  EXPECT_EQ(rejected, trials);
}

TEST(Verifier, RejectsTPlusPivotAttack) {
  // T_r with an extra pivot glued to the border of an aligned subtree
  // passes the pivot's own check but must be rejected at the border nodes,
  // whose presence pattern is too full for any patch.
  const TreeParams p = params(2);
  const Coord R = p.capital_R();
  LabeledGraph attack = build_T(p);
  const Patch h = subtree_patch(p, 0, 0);
  // Rebuild T_r with one extra pivot node glued to the border.
  const graph::NodeId pivot = attack.node_count();
  std::vector<local::Label> labels;
  for (graph::NodeId v = 0; v < attack.node_count(); ++v) {
    labels.push_back(attack.label(v));
  }
  labels.push_back(pivot_label(p.r));
  graph::GraphBuilder g2(pivot + 1);
  for (const auto& [a, b] : attack.graph().edges()) {
    g2.add_edge(a, b);
  }
  for (const CoordPair& c : expected_border(h, R)) {
    g2.add_edge(pivot, static_cast<graph::NodeId>(
                           graph::TreeIndex::id(static_cast<int>(c.y), c.x)));
  }
  const LabeledGraph bad(g2.build(), std::move(labels));
  const auto verifier = make_P_prime_verifier(p);
  const auto run = local::run_oblivious(*verifier, bad);
  EXPECT_FALSE(run.accepted);
}

TEST(Verifier, RejectsPatchWithoutPivot) {
  const TreeParams p = params(2);
  const LabeledGraph with_pivot =
      build_patch_instance(p, subtree_patch(p, 1, 2));
  // Rebuild the same instance minus the pivot node (last node).
  graph::GraphBuilder g(with_pivot.node_count() - 1);
  std::vector<local::Label> labels;
  for (graph::NodeId v = 0; v + 1 < with_pivot.node_count(); ++v) {
    labels.push_back(with_pivot.label(v));
  }
  for (const auto& [u, v] : with_pivot.graph().edges()) {
    if (u < g.node_count() && v < g.node_count()) {
      g.add_edge(u, v);
    }
  }
  const LabeledGraph orphan(g.build(), std::move(labels));
  const auto verifier = make_P_prime_verifier(p);
  EXPECT_FALSE(local::run_oblivious(*verifier, orphan).accepted);
}

TEST(Decider, SeparatesPatchesFromT) {
  const TreeParams p = params(2);
  const auto decider = make_P_decider(p);
  const auto property = property_P(p);
  std::vector<LabeledGraph> instances;
  instances.push_back(build_patch_instance(p, subtree_patch(p, 0, 0)));
  instances.push_back(build_patch_instance(p, subtree_patch(p, 3, 3)));
  Patch trap;
  trap.r = 2;
  trap.y0 = 2;
  trap.bottom_left = 5;
  trap.bottom_right = 8;
  instances.push_back(build_patch_instance(p, trap));
  instances.push_back(build_T(p));  // the no-instance
  Rng rng(7);
  const auto report = local::evaluate_decider(
      *decider, *property, instances, local::bounded_policy(p.f), 3, rng);
  EXPECT_TRUE(report.all_correct())
      << (report.failures.empty() ? "" : report.failures[0].detail);
}

TEST(Decider, RejectsGarbage) {
  const TreeParams p = params(2);
  const auto decider = make_P_decider(p);
  // A plain path mislabelled as tree nodes.
  LabeledGraph garbage(graph::make_path(5));
  for (graph::NodeId v = 0; v < 5; ++v) {
    garbage.set_label(v, tree_label(p.r, v, 3));
  }
  Rng rng(8);
  const IdAssignment ids = local::make_random_bounded(5, p.f, rng);
  EXPECT_FALSE(local::accepts(*decider, garbage, ids));
}

TEST(Decider, IsGenuinelyIdDependent) {
  const TreeParams p = params(2);
  const auto decider = make_P_decider(p);
  const LabeledGraph yes = build_patch_instance(p, subtree_patch(p, 0, 0));
  // With ids drawn from beyond the (B) bound the decider misfires on
  // yes-instances: ids >= R slip in — exactly the paper's point that the
  // decider lives in LD only under (B). Universe 2R makes both outcomes
  // likely per node.
  const auto probe = local::probe_id_dependence(
      *decider, yes, 2 * static_cast<local::Id>(p.capital_R()), 12, {{}, 9});
  EXPECT_TRUE(probe.some_node_output_changed);
}

TEST(Audit, FullPatchCoverageAtR3) {
  TreeParams p = params(3);
  Rng rng(10);
  const auto result = audit_tree_coverage(p, /*max_nodes=*/4000,
                                          /*canonical_sample=*/60, rng);
  EXPECT_EQ(result.nodes_audited, 4000u);
  EXPECT_TRUE(result.full_patch_coverage());
  // The literal aligned-subtree reading leaves alignment boundaries
  // uncovered.
  EXPECT_LT(result.subtree_covered, result.nodes_audited);
  EXPECT_GT(result.subtree_fraction(), 0.5);
  // Canonical ball comparison against real instances: no mismatches.
  EXPECT_EQ(result.canonical_checked, 60u);
  EXPECT_EQ(result.canonical_mismatch, 0u);
}

TEST(Audit, LargeSampleStaysFullyCovered) {
  // The exhaustive audit of all of T_3 (4.2M nodes) lives in the Figure-1
  // bench; here a large sample must stay fully covered.
  TreeParams p = params(3);
  Rng rng(11);
  const auto result = audit_tree_coverage(p, 30'000, 0, rng);
  EXPECT_EQ(result.nodes_audited, 30'000u);
  EXPECT_TRUE(result.full_patch_coverage());
}

TEST(PromiseCycle, DeciderCorrectUnderPromiseAndBound) {
  PromiseCycleParams pc;
  pc.r = 6;
  pc.f = local::IdBound::quadratic();  // f(6) = 37, no-length 38
  const auto decider = make_promise_cycle_decider(pc);
  const auto property = promise_cycle_property(pc);
  const LabeledGraph yes = build_yes_cycle(pc);
  const LabeledGraph no = build_no_cycle(pc);
  EXPECT_TRUE(property->contains(yes));
  EXPECT_FALSE(property->contains(no));
  Rng rng(12);
  const auto report = local::evaluate_decider(
      *decider, *property, {yes, no}, local::bounded_policy(pc.f), 5, rng);
  EXPECT_TRUE(report.all_correct());
}

TEST(PromiseCycle, InstancesObliviouslyIndistinguishable) {
  PromiseCycleParams pc;
  pc.r = 6;
  const auto profile =
      local::BallProfile::of_graph(build_yes_cycle(pc), 1);
  const auto audit =
      local::audit_indistinguishability(build_no_cycle(pc), profile);
  EXPECT_TRUE(audit.indistinguishable());
}

class PatchSweep : public ::testing::TestWithParam<int> {};

// Oracle and verifier agree on randomly drawn patches.
TEST_P(PatchSweep, OracleVerifierAgreement) {
  const TreeParams p = params(2);
  const Coord R = p.capital_R();
  Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  const auto verifier = make_P_prime_verifier(p);
  for (int i = 0; i < 5; ++i) {
    const Coord y0 = static_cast<Coord>(rng.below(static_cast<std::uint64_t>(R - p.r + 1)));
    const Coord level = Coord{1} << (y0 + p.r);
    const Coord width = 1 + static_cast<Coord>(rng.below(1 << p.r));
    const Coord bL = static_cast<Coord>(rng.below(static_cast<std::uint64_t>(level - width + 1)));
    Patch h;
    h.r = p.r;
    h.y0 = y0;
    h.bottom_left = bL;
    h.bottom_right = bL + width - 1;
    ASSERT_TRUE(h.valid(p));
    const LabeledGraph g = build_patch_instance(p, h);
    ASSERT_TRUE(is_patch_instance(p, g));
    EXPECT_TRUE(local::run_oblivious(*verifier, g).accepted)
        << "y0=" << y0 << " bL=" << bL << " w=" << width;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatchSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace locald::trees
