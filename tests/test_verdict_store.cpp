// Crash-recovery and corruption battery for the persistent verdict store.
//
// The store's contract (exec/verdict_store.h) is that a crash can cost at
// most the torn tail record and a corrupted record costs exactly itself:
// recovery walks the checksummed append log, truncates unwalkable tails,
// and quarantines checksum failures without losing what follows. These
// tests inflict the damage byte-by-byte on real shard files and assert the
// blast radius, then pin the end-to-end warm-start property: a reloaded
// store answers byte-identically to recomputation on every registered
// graph family.
#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exec/context.h"
#include "exec/verdict_cache.h"
#include "exec/verdict_store.h"
#include "gen/family.h"
#include "local/algorithm.h"
#include "local/labeled_graph.h"
#include "local/simulator.h"
#include "support/check.h"
#include "support/hash.h"

namespace locald::exec {
namespace {

// A self-cleaning temporary store directory.
struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = "/tmp/locald-store-XXXXXX";
    LOCALD_CHECK(::mkdtemp(tmpl.data()) != nullptr, "mkdtemp failed");
    path = tmpl;
  }
  ~TempDir() {
    DIR* dir = ::opendir(path.c_str());
    if (dir != nullptr) {
      while (dirent* entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name != "." && name != "..") {
          ::unlink((path + "/" + name).c_str());
        }
      }
      ::closedir(dir);
    }
    ::rmdir(path.c_str());
  }
};

std::uint64_t fp(const std::string& encoding) {
  return hash_string(encoding);
}

// File-level surgery helpers for the corruption tests. Single-shard stores
// keep the record layout deterministic: FileHeader (16 bytes), then records
// in append order, each 16-byte RecordHeader + algorithm + encoding with
// the checksum as the header's first 4 bytes.
constexpr std::size_t kFileHeaderBytes = 16;
constexpr std::size_t kRecordHeaderBytes = 16;

std::string only_shard(const std::string& dir) { return dir + "/shard-00.log"; }

off_t file_size(const std::string& file) {
  struct stat st{};
  LOCALD_CHECK(::stat(file.c_str(), &st) == 0, "stat failed");
  return st.st_size;
}

void flip_byte(const std::string& file, off_t offset) {
  const int fd = ::open(file.c_str(), O_RDWR);
  LOCALD_CHECK(fd >= 0, "open for corruption failed");
  char byte = 0;
  LOCALD_CHECK(::pread(fd, &byte, 1, offset) == 1, "pread failed");
  byte = static_cast<char>(byte ^ 0xFF);
  LOCALD_CHECK(::pwrite(fd, &byte, 1, offset) == 1, "pwrite failed");
  ::close(fd);
}

void truncate_by(const std::string& file, off_t bytes) {
  const off_t size = file_size(file);
  LOCALD_CHECK(size > bytes, "file too small to truncate");
  LOCALD_CHECK(::truncate(file.c_str(), size - bytes) == 0, "truncate failed");
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(VerdictStore, RoundTripsAcrossReopen) {
  TempDir dir;
  {
    VerdictStore store(dir.path, 4);
    store.append(fp("ball-a"), "alg", "ball-a", true);
    store.append(fp("ball-b"), "alg", "ball-b", false);
    store.append(fp("ball-a"), "other-alg", "ball-a", false);
    EXPECT_EQ(store.stats().appended, 3u);
    ASSERT_TRUE(store.lookup(fp("ball-a"), "alg", "ball-a").has_value());
    EXPECT_TRUE(*store.lookup(fp("ball-a"), "alg", "ball-a"));
  }
  VerdictStore reopened(dir.path, 4);
  EXPECT_EQ(reopened.stats().records_loaded, 3u);
  EXPECT_EQ(reopened.stats().quarantined, 0u);
  EXPECT_EQ(reopened.stats().dropped_bytes, 0u);
  EXPECT_TRUE(*reopened.lookup(fp("ball-a"), "alg", "ball-a"));
  EXPECT_FALSE(*reopened.lookup(fp("ball-b"), "alg", "ball-b"));
  EXPECT_FALSE(*reopened.lookup(fp("ball-a"), "other-alg", "ball-a"));
  EXPECT_FALSE(
      reopened.lookup(fp("ball-c"), "alg", "ball-c").has_value());
}

TEST(VerdictStore, ReplayedAppendsDoNotGrowTheLog) {
  TempDir dir;
  {
    VerdictStore store(dir.path, 1);
    store.append(fp("ball-a"), "alg", "ball-a", true);
    store.append(fp("ball-a"), "alg", "ball-a", true);  // replay: skipped
    EXPECT_EQ(store.stats().appended, 1u);
  }
  const off_t size_after_two = file_size(only_shard(dir.path));
  {
    // A whole second serving life replaying the same verdict.
    VerdictStore store(dir.path, 1);
    store.append(fp("ball-a"), "alg", "ball-a", true);
    EXPECT_EQ(store.stats().appended, 0u);
  }
  EXPECT_EQ(file_size(only_shard(dir.path)), size_after_two);
  VerdictStore reopened(dir.path, 1);
  EXPECT_EQ(reopened.stats().records_loaded, 1u);
}

TEST(VerdictStore, RejectsAForeignOrReshardedStore) {
  TempDir dir;
  { VerdictStore store(dir.path, 4); }
  // Same directory, different shard layout: refusing loudly beats serving
  // from the wrong shard files.
  EXPECT_THROW(VerdictStore(dir.path, 8), Error);

  TempDir garbage_dir;
  {
    const std::string file = only_shard(garbage_dir.path);
    const int fd = ::open(file.c_str(), O_WRONLY | O_CREAT, 0644);
    LOCALD_CHECK(fd >= 0, "open failed");
    const char junk[] = "this is not a verdict store shard at all";
    LOCALD_CHECK(::write(fd, junk, sizeof(junk)) ==
                     static_cast<ssize_t>(sizeof(junk)),
                 "write failed");
    ::close(fd);
  }
  EXPECT_THROW(VerdictStore(garbage_dir.path, 1), Error);
}

// ---------------------------------------------------------------------------
// Crash recovery: torn tails and corrupted records
// ---------------------------------------------------------------------------

TEST(VerdictStore, TruncatedTailRecordIsDroppedOnOpen) {
  TempDir dir;
  {
    VerdictStore store(dir.path, 1);
    store.append(fp("ball-a"), "alg", "ball-a", true);
    store.append(fp("ball-b"), "alg", "ball-b", false);
  }
  // A crash mid-write tears the final record; everything before it is
  // untouched.
  truncate_by(only_shard(dir.path), 3);

  {
    VerdictStore recovered(dir.path, 1);
    EXPECT_EQ(recovered.stats().records_loaded, 1u);
    EXPECT_GT(recovered.stats().dropped_bytes, 0u);
    EXPECT_TRUE(*recovered.lookup(fp("ball-a"), "alg", "ball-a"));
    EXPECT_FALSE(recovered.lookup(fp("ball-b"), "alg", "ball-b").has_value());

    // Recovery truncated back to a record boundary, so the store keeps
    // working: the lost verdict can be re-appended and survives the next
    // reopen (scoped: the write lease admits one live writer at a time).
    recovered.append(fp("ball-b"), "alg", "ball-b", false);
  }
  VerdictStore again(dir.path, 1);
  EXPECT_EQ(again.stats().records_loaded, 2u);
  EXPECT_EQ(again.stats().dropped_bytes, 0u);
  EXPECT_FALSE(*again.lookup(fp("ball-b"), "alg", "ball-b"));
}

TEST(VerdictStore, TornTailShorterThanARecordHeaderIsDropped) {
  TempDir dir;
  {
    VerdictStore store(dir.path, 1);
    store.append(fp("ball-a"), "alg", "ball-a", true);
  }
  const off_t intact = file_size(only_shard(dir.path));
  {
    // Simulate a crash that wrote only a few bytes of the next record's
    // header.
    const int fd = ::open(only_shard(dir.path).c_str(), O_WRONLY | O_APPEND);
    LOCALD_CHECK(fd >= 0, "open failed");
    const char torn[] = {0x01, 0x02, 0x03};
    LOCALD_CHECK(::write(fd, torn, sizeof(torn)) == 3, "write failed");
    ::close(fd);
  }
  VerdictStore recovered(dir.path, 1);
  EXPECT_EQ(recovered.stats().records_loaded, 1u);
  EXPECT_EQ(recovered.stats().dropped_bytes, 3u);
  EXPECT_EQ(file_size(only_shard(dir.path)), intact);
}

TEST(VerdictStore, DurabilityCountersTrackAppendsSyncsAndTruncations) {
  TempDir dir;
  {
    VerdictStore store(dir.path, 1);
    EXPECT_EQ(store.stats().appended_bytes, 0u);
    EXPECT_EQ(store.stats().fsyncs, 0u);
    store.append(fp("ball-a"), "alg", "ball-a", true);
    store.append(fp("ball-b"), "alg", "ball-b", false);
    const VerdictStore::Stats stats = store.stats();
    EXPECT_EQ(stats.appended, 2u);
    // Two records, each a header plus algorithm + encoding payload.
    EXPECT_GT(stats.appended_bytes, 2 * kRecordHeaderBytes);
    store.sync();
    EXPECT_EQ(store.stats().fsyncs, 1u);  // one shard, one fsync
    store.sync();
    EXPECT_EQ(store.stats().fsyncs, 2u);
  }  // destructor syncs once more
  truncate_by(only_shard(dir.path), 3);
  VerdictStore recovered(dir.path, 1);
  // Crash recovery cut the torn tail with exactly one ftruncate.
  EXPECT_EQ(recovered.stats().truncations, 1u);
  EXPECT_GT(recovered.stats().dropped_bytes, 0u);
  // Per-process counters start at zero in the recovered life.
  EXPECT_EQ(recovered.stats().appended_bytes, 0u);
  EXPECT_EQ(recovered.stats().fsyncs, 0u);
}

TEST(VerdictStore, FlippedChecksumByteQuarantinesOnlyThatRecord) {
  TempDir dir;
  {
    VerdictStore store(dir.path, 1);
    store.append(fp("ball-a"), "alg", "ball-a", true);
    store.append(fp("ball-b"), "alg", "ball-b", false);
    store.append(fp("ball-c"), "alg", "ball-c", true);
  }
  // Flip a byte of the FIRST record's checksum. Its length fields are
  // intact, so recovery can step over exactly this record and keep loading
  // the two behind it.
  flip_byte(only_shard(dir.path), kFileHeaderBytes);

  VerdictStore recovered(dir.path, 1);
  EXPECT_EQ(recovered.stats().quarantined, 1u);
  EXPECT_EQ(recovered.stats().records_loaded, 2u);
  EXPECT_EQ(recovered.stats().dropped_bytes, 0u);
  // The quarantined record is gone; its neighbors answer as before.
  EXPECT_FALSE(recovered.lookup(fp("ball-a"), "alg", "ball-a").has_value());
  EXPECT_FALSE(*recovered.lookup(fp("ball-b"), "alg", "ball-b"));
  EXPECT_TRUE(*recovered.lookup(fp("ball-c"), "alg", "ball-c"));
}

TEST(VerdictStore, FlippedKeyByteQuarantinesOnlyThatRecord) {
  TempDir dir;
  {
    VerdictStore store(dir.path, 1);
    store.append(fp("ball-a"), "alg", "ball-a", true);
    store.append(fp("ball-b"), "alg", "ball-b", false);
  }
  // Corrupt a key byte of the middle of record one (its checksum no longer
  // matches), leaving record two byte-identical.
  flip_byte(only_shard(dir.path),
            static_cast<off_t>(kFileHeaderBytes + kRecordHeaderBytes + 1));
  VerdictStore recovered(dir.path, 1);
  EXPECT_EQ(recovered.stats().quarantined, 1u);
  EXPECT_EQ(recovered.stats().records_loaded, 1u);
  EXPECT_FALSE(*recovered.lookup(fp("ball-b"), "alg", "ball-b"));
}

// ---------------------------------------------------------------------------
// Concurrency: the store under the cache's write-through traffic
// ---------------------------------------------------------------------------

TEST(VerdictStore, ConcurrentWritersFromEightThreadsReloadEqualToTheCache) {
  TempDir dir;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kClasses = 96;
  VerdictCache cache;
  {
    VerdictStore store(dir.path, 16);
    cache.attach_store(&store);
    // Every thread covers an overlapping window of the key space, so the
    // same class races between threads both in the cache shard and in the
    // store shard behind it.
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&cache, t] {
        for (std::uint64_t i = 0; i < kClasses; ++i) {
          const std::uint64_t cls = (i + static_cast<std::uint64_t>(t) * 7) %
                                    kClasses;
          const std::string enc = "ball-" + std::to_string(cls);
          const bool accepted = cls % 3 == 0;
          if (const auto hit = cache.lookup(fp(enc), "alg", enc)) {
            EXPECT_EQ(*hit, accepted);
          } else {
            cache.insert(fp(enc), "alg", enc, accepted);
          }
        }
      });
    }
    for (std::thread& w : writers) w.join();
    cache.attach_store(nullptr);  // store dies first; detach before it does
  }

  // The reloaded store holds exactly the cache's contents: every class,
  // the right verdict, no duplicates.
  VerdictStore reloaded(dir.path, 16);
  EXPECT_EQ(reloaded.stats().records_loaded, cache.stats().entries);
  EXPECT_EQ(reloaded.stats().quarantined, 0u);
  for (std::uint64_t cls = 0; cls < kClasses; ++cls) {
    const std::string enc = "ball-" + std::to_string(cls);
    const auto stored = reloaded.lookup(fp(enc), "alg", enc);
    const auto cached = cache.lookup(fp(enc), "alg", enc);
    ASSERT_TRUE(stored.has_value()) << enc;
    ASSERT_TRUE(cached.has_value()) << enc;
    EXPECT_EQ(*stored, *cached) << enc;
  }
}

// ---------------------------------------------------------------------------
// End to end: warm-reload verdicts == recomputation on every family
// ---------------------------------------------------------------------------

TEST(VerdictStore, WarmReloadMatchesRecomputationOnEveryFamily) {
  TempDir dir;
  // A deterministic, isomorphism-invariant probe algorithm: memoization-
  // safe by construction (ball size is a canonical-class invariant), with
  // both verdicts realized across the registry's topologies — interior and
  // boundary balls differ in parity in most families.
  const local::LambdaAlgorithm probe(
      "store-probe", 1, /*oblivious=*/true, [](const local::BallView& ball) {
        return ball.node_count() % 2 == 0 ? local::Verdict::yes
                                          : local::Verdict::no;
      });

  for (const gen::Family& family : gen::family_registry()) {
    const gen::FamilyInstanceSpec spec =
        gen::resolve_family_text(family.name, 24);
    const local::LabeledGraph g(spec.build(/*seed=*/7));

    // Reference: recomputation, no cache anywhere.
    const local::RunResult reference = run_oblivious(probe, g);

    // First life: decide every class through a store-backed cache.
    {
      VerdictStore store(dir.path, 4);
      VerdictCache cache;
      cache.attach_store(&store);
      ExecContext ctx;
      ctx.cache = &cache;
      const local::RunResult first = run_oblivious(probe, g, {ctx});
      EXPECT_EQ(first.outputs, reference.outputs) << family.name;
    }

    // Second life: a fresh cache over the reloaded store. Every verdict
    // must come from disk (zero recomputation-misses) and match the
    // reference exactly — the restart-warm contract.
    {
      VerdictStore store(dir.path, 4);
      VerdictCache cache;
      cache.attach_store(&store);
      ExecContext ctx;
      ctx.cache = &cache;
      const local::RunResult warm = run_oblivious(probe, g, {ctx});
      EXPECT_EQ(warm.outputs, reference.outputs) << family.name;
      EXPECT_EQ(warm.accepted, reference.accepted) << family.name;
      const VerdictCache::Stats stats = cache.stats();
      EXPECT_EQ(stats.misses, 0u) << family.name;
      EXPECT_GT(stats.store_hits, 0u) << family.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Crash-path bugfixes: failed-append rollback, CLOEXEC, shard naming
// ---------------------------------------------------------------------------

TEST(VerdictStore, FailedPartialAppendRollsBackTheShardFile) {
  TempDir dir;
  {
    VerdictStore store(dir.path, 1);
    store.append(fp("ball-a"), "alg", "ball-a", true);
    const off_t before = file_size(only_shard(dir.path));

    // Inject a short write: the next append lands only 5 bytes of its
    // record before failing, as ENOSPC would. The store must roll the file
    // back to the pre-append offset before rethrowing — a torn record in
    // the log's INTERIOR would poison every later append.
    VerdictStore::test_fail_next_append_after(5);
    EXPECT_THROW(store.append(fp("ball-b"), "alg", "ball-b", false), Error);
    EXPECT_EQ(file_size(only_shard(dir.path)), before);

    // The store keeps working after the failure: the same append succeeds
    // and lands exactly one whole record past the rollback point.
    store.append(fp("ball-b"), "alg", "ball-b", false);
    ASSERT_TRUE(store.lookup(fp("ball-b"), "alg", "ball-b").has_value());
    EXPECT_FALSE(*store.lookup(fp("ball-b"), "alg", "ball-b"));
  }
  // A clean reopen sees two whole records and no crash-recovery damage.
  VerdictStore reopened(dir.path, 1);
  EXPECT_EQ(reopened.stats().records_loaded, 2u);
  EXPECT_EQ(reopened.stats().dropped_bytes, 0u);
  EXPECT_EQ(reopened.stats().truncations, 0u);
  EXPECT_TRUE(*reopened.lookup(fp("ball-a"), "alg", "ball-a"));
  EXPECT_FALSE(*reopened.lookup(fp("ball-b"), "alg", "ball-b"));
}

TEST(VerdictStore, EveryStoreFdCarriesCloexec) {
  TempDir dir;
  VerdictStore store(dir.path, 4);
  store.append(fp("ball-a"), "alg", "ball-a", true);

  // Walk this process's open fds and assert FD_CLOEXEC on every one that
  // resolves into the store directory (shards and the LOCK lease). A
  // leaked store fd in a forked child would outlive the writer's lease.
  int checked = 0;
  DIR* fds = ::opendir("/proc/self/fd");
  ASSERT_NE(fds, nullptr);
  while (dirent* entry = ::readdir(fds)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    char target[4096];
    const std::string link = "/proc/self/fd/" + name;
    const ssize_t n = ::readlink(link.c_str(), target, sizeof(target) - 1);
    if (n <= 0) continue;
    target[n] = '\0';
    if (std::string(target).rfind(dir.path + "/", 0) != 0) continue;
    const int fd = std::atoi(name.c_str());
    const int flags = ::fcntl(fd, F_GETFD);
    ASSERT_GE(flags, 0);
    EXPECT_NE(flags & FD_CLOEXEC, 0) << "fd " << fd << " -> " << target;
    checked += 1;
  }
  ::closedir(fds);
  EXPECT_GE(checked, 5);  // 4 shards + LOCK
}

TEST(VerdictStore, WideShardCountsGetUnambiguousFileNames) {
  TempDir dir;
  {
    VerdictStore store(dir.path, 128);
    EXPECT_EQ(store.shard_count(), 128u);
    store.append(fp("ball-a"), "alg", "ball-a", true);
    // Above 100 shards the two-digit names would collide or misorder;
    // shard 5 must be zero-padded to the full width.
    EXPECT_EQ(file_size(dir.path + "/shard-005.log"),
              static_cast<off_t>(kFileHeaderBytes));
    EXPECT_EQ(file_size(dir.path + "/shard-127.log"),
              static_cast<off_t>(kFileHeaderBytes));
  }
  VerdictStore reopened(dir.path, 128);
  EXPECT_EQ(reopened.stats().records_loaded, 1u);
  EXPECT_TRUE(*reopened.lookup(fp("ball-a"), "alg", "ball-a"));
}

TEST(VerdictStore, ShardCountBoundsAreValidatedAtOpen) {
  TempDir zero_dir;
  EXPECT_THROW(VerdictStore(zero_dir.path, 0), Error);
  TempDir wide_dir;
  EXPECT_THROW(VerdictStore(wide_dir.path, 257), Error);
}

// ---------------------------------------------------------------------------
// Multi-process protocol: write lease and follower tail refresh
// ---------------------------------------------------------------------------

TEST(VerdictStore, SecondWriterFailsFastWhileTheLeaseIsHeld) {
  TempDir dir;
  {
    VerdictStore writer(dir.path, 1);
    writer.append(fp("ball-a"), "alg", "ball-a", true);
    // The open-file-description lock conflicts even within one process, so
    // the single-writer invariant is testable without forking.
    try {
      VerdictStore second(dir.path, 1);
      FAIL() << "second writer must be rejected while the lease is held";
    } catch (const Error& error) {
      EXPECT_NE(std::string(error.what()).find("live writer"),
                std::string::npos);
      EXPECT_NE(std::string(error.what()).find("--follower"),
                std::string::npos);
    }
    // A follower on the same directory is fine alongside the live writer.
    VerdictStore follower(dir.path, 1, VerdictStore::Role::follower);
    EXPECT_FALSE(follower.writable());
  }
  // The lease dies with the writer: a successor opens cleanly.
  VerdictStore successor(dir.path, 1);
  EXPECT_TRUE(*successor.lookup(fp("ball-a"), "alg", "ball-a"));
}

TEST(VerdictStore, FollowerRequiresAWriterInitializedStore) {
  EXPECT_THROW(
      VerdictStore("/tmp/locald-no-such-store-dir", 1,
                   VerdictStore::Role::follower),
      Error);
  // An existing directory whose shards the writer has not created yet is
  // just as unservable: the follower must fail fast, not invent a store.
  TempDir dir;
  EXPECT_THROW(VerdictStore(dir.path, 1, VerdictStore::Role::follower),
               Error);
}

TEST(VerdictStore, FollowerObservesWriterAppendsAfterTailRefresh) {
  TempDir dir;
  VerdictStore writer(dir.path, 2);
  writer.append(fp("ball-a"), "alg", "ball-a", true);

  VerdictStore follower(dir.path, 2, VerdictStore::Role::follower);
  // Records present at open are served from the open-time index.
  EXPECT_TRUE(*follower.lookup(fp("ball-a"), "alg", "ball-a"));
  EXPECT_EQ(follower.stats().tail_refreshes, 0u);

  // Appends made after the follower opened are invisible until a miss
  // triggers the tail refresh — then every new record in the shard is
  // picked up, not just the one asked about.
  writer.append(fp("ball-b"), "alg", "ball-b", false);
  writer.append(fp("ball-c"), "alg", "ball-c", true);
  ASSERT_TRUE(follower.lookup(fp("ball-b"), "alg", "ball-b").has_value());
  EXPECT_FALSE(*follower.lookup(fp("ball-b"), "alg", "ball-b"));
  EXPECT_TRUE(*follower.lookup(fp("ball-c"), "alg", "ball-c"));
  const VerdictStore::Stats stats = follower.stats();
  EXPECT_GE(stats.tail_refreshes, 1u);
  EXPECT_GE(stats.tail_records, 2u);
  // A genuinely absent key stays a miss (one refresh attempt, no loop).
  EXPECT_FALSE(follower.lookup(fp("ball-z"), "alg", "ball-z").has_value());
}

TEST(VerdictStore, WriterCrashMidAppendLeavesFollowerOnLastGoodPrefix) {
  TempDir dir;
  std::string torn_key;
  {
    VerdictStore writer(dir.path, 1);
    writer.append(fp("ball-a"), "alg", "ball-a", true);
  }
  // Simulate the writer dying mid-write(): a torn half-record lands at the
  // tail of the shard. Build real record bytes by appending through a
  // scratch writer, then chop the tail back mid-record.
  {
    VerdictStore writer(dir.path, 1);
    writer.append(fp("ball-torn"), "alg", "ball-torn", true);
  }
  truncate_by(only_shard(dir.path), 4);

  // The follower opens on the damaged store without truncating anything:
  // it serves the last good prefix and answers the torn key with a miss,
  // holding its high-water mark at the record boundary.
  VerdictStore follower(dir.path, 1, VerdictStore::Role::follower);
  EXPECT_TRUE(*follower.lookup(fp("ball-a"), "alg", "ball-a"));
  EXPECT_FALSE(
      follower.lookup(fp("ball-torn"), "alg", "ball-torn").has_value());

  // A restarted writer repairs the tail (truncates the torn bytes) and
  // appends fresh records; the follower picks them up on its next miss
  // even though the file shrank and regrew under its old map.
  {
    VerdictStore repaired(dir.path, 1);
    EXPECT_EQ(repaired.stats().truncations, 1u);
    EXPECT_GT(repaired.stats().dropped_bytes, 0u);
    repaired.append(fp("ball-b"), "alg", "ball-b", false);
  }
  ASSERT_TRUE(follower.lookup(fp("ball-b"), "alg", "ball-b").has_value());
  EXPECT_FALSE(*follower.lookup(fp("ball-b"), "alg", "ball-b"));
  EXPECT_TRUE(*follower.lookup(fp("ball-a"), "alg", "ball-a"));
}

TEST(VerdictStore, FollowerBackedCacheSkipsWriteThrough) {
  TempDir dir;
  VerdictStore writer(dir.path, 1);
  writer.append(fp("ball-a"), "alg", "ball-a", true);

  VerdictStore follower(dir.path, 1, VerdictStore::Role::follower);
  VerdictCache cache(1);
  cache.attach_store(&follower);
  // A store hit is promoted into the memory tier as usual.
  ASSERT_TRUE(cache.lookup(fp("ball-a"), "alg", "ball-a").has_value());
  EXPECT_EQ(cache.stats().store_hits, 1u);
  // The follower's own decisions stay in memory: insert must not try to
  // append through the read-only store (which would be a BugError).
  const off_t before = file_size(only_shard(dir.path));
  cache.insert(fp("ball-x"), "alg", "ball-x", true);
  EXPECT_EQ(file_size(only_shard(dir.path)), before);
  EXPECT_TRUE(*cache.lookup(fp("ball-x"), "alg", "ball-x"));
  // clear() must likewise skip the follower's sync.
  cache.clear();
  EXPECT_EQ(follower.stats().fsyncs, 0u);
}

}  // namespace
}  // namespace locald::exec
